package sim

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sig"
	"repro/internal/vfs"
)

// Strategy selects the process-creation API a command is launched
// through — the lines of the paper's Figure 1, selectable per command
// so any workload can be run through every API the paper compares.
type Strategy int

// Creation strategies.
const (
	// Spawn is posix_spawn (§6.1): never duplicates the parent;
	// cost independent of the parent's size. The default.
	Spawn Strategy = iota
	// ForkExec is classic COW fork followed by exec.
	ForkExec
	// VforkExec shares the parent's address space until exec.
	VforkExec
	// Builder is the cross-process construction API (§6.2): an
	// empty child populated piece by piece, then started.
	Builder
	// EmulatedFork is fork implemented in user space on top of the
	// cross-process API (§5's "a fork-less kernel can still run
	// fork, slowly") followed by exec.
	EmulatedFork
	// EagerForkExec is the 1970s ablation: fork that physically
	// copies every resident page, then exec.
	EagerForkExec
)

func (st Strategy) String() string { return st.method().String() }

func (st Strategy) method() core.Method {
	switch st {
	case ForkExec:
		return core.MethodForkExec
	case VforkExec:
		return core.MethodVforkExec
	case Builder:
		return core.MethodBuilder
	case EmulatedFork:
		return core.MethodEmulatedForkExec
	case EagerForkExec:
		return core.MethodForkEagerExec
	}
	return core.MethodSpawn
}

// Strategies lists the five creation APIs the paper compares.
func Strategies() []Strategy {
	return []Strategy{ForkExec, VforkExec, Spawn, Builder, EmulatedFork}
}

// ParseStrategy maps a short command-line name (spawn, fork, vfork,
// builder, emufork, eager) to its Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "spawn":
		return Spawn, nil
	case "fork":
		return ForkExec, nil
	case "vfork":
		return VforkExec, nil
	case "builder":
		return Builder, nil
	case "emufork":
		return EmulatedFork, nil
	case "eager":
		return EagerForkExec, nil
	}
	return 0, fmt.Errorf("sim: unknown strategy %q (spawn|fork|vfork|builder|emufork|eager)", name)
}

// Cmd describes a simulated process to run, in the style of
// exec.Cmd: populate the fields, pick a Strategy with Via, then
// Start/Wait or Run. A Cmd can be used once.
type Cmd struct {
	// Path is the absolute path of the image inside the machine.
	Path string

	// Args is the argv, Args[0] included (set by Command).
	Args []string

	// Dir is the child's working directory ("" = the host's).
	Dir string

	// Stdin feeds the child's fd 0. A *File (pipe end, simulated
	// file) is wired directly; any other io.Reader is mounted as a
	// device the child reads; nil inherits the host's stdin.
	Stdin io.Reader

	// Stdout receives the child's fd 1 (same rules as Stdin).
	Stdout io.Writer

	// Stderr receives fd 2. If Stderr == Stdout the two descriptors
	// share one open-file description, exactly like 2>&1.
	Stderr io.Writer

	// ExtraFiles are inherited as fds 3, 4, ... — explicit, opt-in
	// inheritance, the paper's answer to fork's copy-everything.
	ExtraFiles []*File

	// SigDefault resets these signals to their default disposition
	// in the child; SigIgnore sets them ignored (spawn attributes).
	SigDefault []Signal
	SigIgnore  []Signal

	// Process is the running child after Start.
	Process *Process

	// ProcessState is the decoded exit state after Wait.
	ProcessState *ProcessState

	sys      *System
	via      Strategy
	devPaths []string // per-command device nodes to unlink after Wait
}

// Command returns a Cmd to run path with the given arguments on s. A
// bare name (no '/') is looked up in /bin. Args[0] follows the name,
// as with exec.Command.
func (s *System) Command(path string, args ...string) *Cmd {
	if !strings.Contains(path, "/") {
		path = "/bin/" + path
	}
	return &Cmd{
		Path: path,
		Args: append([]string{path}, args...),
		sys:  s,
	}
}

// Via selects the creation strategy (default Spawn) and returns c for
// chaining: sys.Command("echo", "hi").Via(sim.ForkExec).Run().
func (c *Cmd) Via(st Strategy) *Cmd {
	c.via = st
	return c
}

// Start creates the child through the selected strategy and makes it
// runnable. It does not advance virtual time past creation — the child
// executes during Wait. On failure no process is left behind.
func (c *Cmd) Start() error {
	p, err := c.Create()
	if err != nil {
		return err
	}
	if err := p.Start(); err != nil {
		p.Destroy()
		c.cleanup()
		c.Process = nil
		return err
	}
	return nil
}

// Create is Start without scheduling: the child is fully constructed
// (image, descriptors, cwd, signal state) but parked, so creation cost
// can be measured or the process inspected before its first
// instruction. Start it with Process.Start.
func (c *Cmd) Create() (*Process, error) {
	if c.Process != nil {
		return nil, fmt.Errorf("sim: command already started")
	}
	if c.sys == nil {
		return nil, fmt.Errorf("sim: Cmd must come from System.Command")
	}
	k := c.sys.k
	child, elapsed, err := core.CreateChild(k, c.sys.host, c.via.method(), c.Path, c.Args)
	if err != nil {
		c.cleanup()
		return nil, fmt.Errorf("sim: %v %s: %w", c.via, c.Path, err)
	}
	if err := c.wire(child); err != nil {
		k.DestroyProcess(child)
		c.cleanup()
		return nil, err
	}
	c.Process = &Process{sys: c.sys, raw: child, creation: time.Duration(elapsed), cleanup: c.cleanup}
	return c.Process, nil
}

// wire gives the child exactly the descriptors, directory, and signal
// state the Cmd describes — uniformly across strategies, so the same
// workload observes the same environment under every creation API.
func (c *Cmd) wire(child *kernel.Process) error {
	stdin, err := c.inputFile(child)
	if err != nil {
		return err
	}
	stdout, err := c.outputFile(c.Stdout, 1, child)
	if err != nil {
		stdin.Release()
		return err
	}
	var stderr *vfs.OpenFile
	if c.Stderr != nil && interfaceEqual(c.Stderr, c.Stdout) {
		stderr = stdout.Retain() // 2>&1: shared description, shared offset
	} else {
		stderr, err = c.outputFile(c.Stderr, 2, child)
		if err != nil {
			stdin.Release()
			stdout.Release()
			return err
		}
	}

	// Fork-family strategies arrive with a copy of the host's table,
	// Builder with an empty one. Reset to the os/exec contract:
	// stdio plus ExtraFiles, nothing else.
	fds := child.FDs()
	fds.CloseAll()
	stdio := []*vfs.OpenFile{stdin, stdout, stderr}
	for fd, of := range stdio {
		if err := fds.InstallAt(of, false, fd); err != nil {
			// InstallAt does not consume on failure: release the
			// failed reference and every not-yet-installed one.
			for _, rest := range stdio[fd:] {
				rest.Release()
			}
			return err
		}
	}
	for i, f := range c.ExtraFiles {
		if f == nil || f.raw() == nil {
			return fmt.Errorf("sim: ExtraFiles[%d] is closed", i)
		}
		of := f.raw().Retain()
		if err := fds.InstallAt(of, false, 3+i); err != nil {
			of.Release()
			return err
		}
	}

	if c.Dir != "" {
		dir, err := c.sys.k.FS().Resolve(nil, c.Dir)
		if err != nil {
			return fmt.Errorf("sim: chdir %s: %w", c.Dir, err)
		}
		if err := child.SetCwd(dir); err != nil {
			return fmt.Errorf("sim: chdir %s: %w", c.Dir, err)
		}
	}

	for _, s := range c.SigDefault {
		if err := child.Signals().Set(s, sig.Disposition{Kind: sig.ActDefault}); err != nil {
			return err
		}
	}
	for _, s := range c.SigIgnore {
		if err := child.Signals().Set(s, sig.Disposition{Kind: sig.ActIgnore}); err != nil {
			return err
		}
	}
	return nil
}

// interfaceEqual protects against panics from comparing two interface
// values with uncomparable dynamic types (same guard as os/exec).
func interfaceEqual(a, b any) bool {
	defer func() { recover() }()
	return a == b
}

// inherit retains the host's descriptor fd for the child.
func (c *Cmd) inherit(fd int) (*vfs.OpenFile, error) {
	of, err := c.sys.host.FDs().Get(fd)
	if err != nil {
		return nil, fmt.Errorf("sim: host has no fd %d to inherit: %w", fd, err)
	}
	return of.Retain(), nil
}

// inputFile turns Cmd.Stdin into the child's fd 0: nil inherits the
// host's stdin, a *File is wired directly, any other io.Reader is
// mounted as a per-command device the child reads from.
func (c *Cmd) inputFile(child *kernel.Process) (*vfs.OpenFile, error) {
	switch x := c.Stdin.(type) {
	case nil:
		return c.inherit(0)
	case *File:
		if x.raw() == nil {
			return nil, fmt.Errorf("sim: stdin: file already closed")
		}
		return x.raw().Retain(), nil
	default:
		return c.deviceFile(0, child, &vfs.ConsoleDevice{In: x})
	}
}

// outputFile is inputFile's write-side twin for fds 1 and 2.
func (c *Cmd) outputFile(w io.Writer, fd int, child *kernel.Process) (*vfs.OpenFile, error) {
	switch x := w.(type) {
	case nil:
		return c.inherit(fd)
	case *File:
		if x.raw() == nil {
			return nil, fmt.Errorf("sim: fd %d: file already closed", fd)
		}
		return x.raw().Retain(), nil
	default:
		return c.deviceFile(fd, child, &vfs.ConsoleDevice{Out: x})
	}
}

// deviceFile mounts dev at a per-command /dev node and opens it.
func (c *Cmd) deviceFile(fd int, child *kernel.Process, dev vfs.Device) (*vfs.OpenFile, error) {
	path := fmt.Sprintf("/dev/cmd%d-fd%d", child.Pid, fd)
	ino, err := c.sys.k.FS().Mknod(path, dev)
	if err != nil {
		return nil, err
	}
	c.devPaths = append(c.devPaths, path)
	flags := vfs.ORdOnly
	if fd > 0 {
		flags = vfs.OWrOnly
	}
	return vfs.NewOpenFile(ino, flags), nil
}

// cleanup unlinks the per-command device nodes.
func (c *Cmd) cleanup() {
	for _, p := range c.devPaths {
		_ = c.sys.k.FS().Remove(nil, p)
	}
	c.devPaths = nil
}

// Wait drives the machine until the child exits, decodes its state
// into ProcessState, and returns nil on success or an *ExitError on a
// non-zero exit or signal death — never a raw status word.
func (c *Cmd) Wait() error {
	if c.Process == nil {
		return fmt.Errorf("sim: Wait before Start")
	}
	ps, err := c.Process.Wait()
	c.cleanup()
	if err != nil {
		return err
	}
	c.ProcessState = ps
	if !ps.Success() {
		return &ExitError{ProcessState: ps}
	}
	return nil
}

// Run starts the command and waits for it to complete.
func (c *Cmd) Run() error {
	if err := c.Start(); err != nil {
		return err
	}
	return c.Wait()
}

// Output runs the command and returns everything it wrote to stdout.
func (c *Cmd) Output() ([]byte, error) {
	if c.Stdout != nil {
		return nil, fmt.Errorf("sim: Output with Stdout already set")
	}
	var buf bytes.Buffer
	c.Stdout = &buf
	err := c.Run()
	return buf.Bytes(), err
}

// CombinedOutput runs the command and returns interleaved stdout and
// stderr.
func (c *Cmd) CombinedOutput() ([]byte, error) {
	if c.Stdout != nil || c.Stderr != nil {
		return nil, fmt.Errorf("sim: CombinedOutput with Stdout/Stderr already set")
	}
	var buf bytes.Buffer
	c.Stdout = &buf
	c.Stderr = &buf
	err := c.Run()
	return buf.Bytes(), err
}
