package net

import (
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/fault"
)

// FuzzNetDeliver drives random topologies, latencies, traffic, and
// partition schedules through the fabric and checks the invariants a
// deterministic wire must keep: no panic, no lost-or-duplicated
// message (sent = delivered + dropped, every delivered seq unique),
// monotone non-decreasing delivery times, and a bit-identical replay.
func FuzzNetDeliver(f *testing.F) {
	f.Add([]byte{4, 8, 1, 2, 3, 4, 5, 6, 7, 8}, uint64(1))
	f.Add([]byte{2, 0, 255, 254, 253}, uint64(42))
	f.Add([]byte{8, 100, 9, 9, 9, 0, 1, 2}, uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		if len(data) < 2 {
			return
		}
		nodes := int(data[0])%8 + 2
		// A seed-derived partition: cut off a prefix of the address
		// space for a window, plus pseudo-random chaos drops.
		isolated := []int{}
		for a := 0; a < int(seed%uint64(nodes)); a++ {
			isolated = append(isolated, a)
		}
		sched := fault.Any(
			fault.NetSplit{
				Isolated: isolated,
				From:     cost.Ticks(data[1]) * cost.Microsecond,
				Until:    cost.Ticks(data[1])*cost.Microsecond + cost.Millisecond,
			},
			fault.NetChaos(seed, 0),
		)
		run := func() (string, NodeStats, int) {
			fab, err := New(nodes, cost.DefaultModel(),
				WithFaults(sched),
				WithLatency(func(src, dst int) cost.Ticks {
					// Deterministic per-pair latency derived from the
					// fuzz input.
					return cost.Ticks(int(data[0])+src*7+dst*13) * cost.Microsecond
				}))
			if err != nil {
				t.Fatal(err)
			}
			transcript := ""
			delivered := 0
			seen := map[uint64]bool{}
			last := cost.Ticks(0)
			for i, b := range data[2:] {
				src := int(b) % nodes
				dst := int(b>>3) % nodes
				fab.Send(src, dst, "fz", uint64(i), uint64(b)*17, cost.Ticks(i)*cost.Microsecond)
				// Interleave partial drains with sends: within one
				// drain, arrival order must be monotone (later sends
				// may of course arrive earlier than already-delivered
				// packets — the wire cannot deliver the future).
				if b%3 == 0 {
					last = 0
					for _, p := range fab.Deliver(cost.Ticks(i) * 10 * cost.Microsecond) {
						if seen[p.Tag] {
							t.Fatalf("duplicate delivery of tag %d", p.Tag)
						}
						seen[p.Tag] = true
						if p.Arrival < last {
							t.Fatalf("delivery time went backwards: %v after %v", p.Arrival, last)
						}
						last = p.Arrival
						delivered++
						transcript += fmt.Sprintf("%d@%d>%d;", p.Tag, p.Arrival, p.Dst)
					}
				}
			}
			last = 0
			for fab.InFlight() > 0 {
				p, ok := fab.DeliverNext()
				if !ok {
					continue
				}
				if seen[p.Tag] {
					t.Fatalf("duplicate delivery of tag %d", p.Tag)
				}
				seen[p.Tag] = true
				if p.Arrival < last {
					t.Fatalf("delivery time went backwards: %v after %v", p.Arrival, last)
				}
				last = p.Arrival
				delivered++
				transcript += fmt.Sprintf("%d@%d>%d;", p.Tag, p.Arrival, p.Dst)
			}
			return transcript, fab.Totals(), delivered
		}
		tr1, tot1, delivered := run()
		// Conservation: every packet that made it onto the wire was
		// delivered or dropped at the last hop; send-side drops never
		// entered it.
		if tot1.PacketsSent != uint64(delivered)+tot1.DropsRecv {
			t.Fatalf("lost messages: sent %d, delivered %d, recv-drops %d",
				tot1.PacketsSent, delivered, tot1.DropsRecv)
		}
		if attempts := uint64(len(data) - 2); tot1.PacketsSent+tot1.DropsSend != attempts {
			t.Fatalf("send accounting: %d sent + %d send-drops != %d attempts",
				tot1.PacketsSent, tot1.DropsSend, attempts)
		}
		// Determinism: the identical run replays bit-for-bit.
		tr2, tot2, _ := run()
		if tr1 != tr2 || tot1 != tot2 {
			t.Fatalf("replay diverged:\n%s\n%s", tr1, tr2)
		}
	})
}
