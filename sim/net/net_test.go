package net

import (
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/fault"
)

// TestArrivalCostModel: arrival = send + stack + bytes*perByte +
// latency, with WithLatency overriding the uniform link.
func TestArrivalCostModel(t *testing.T) {
	m := cost.DefaultModel()
	f, err := New(3, m)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := f.Send(0, 2, "req", 1, 1000, 5*cost.Microsecond)
	if !ok {
		t.Fatal("clean send dropped")
	}
	want := 5*cost.Microsecond + m.NetStack + 1000*m.NetPerByte + m.NetLinkLatency
	if p.Arrival != want {
		t.Errorf("arrival = %v, want %v", p.Arrival, want)
	}

	f2, _ := New(3, m, WithLatency(func(src, dst int) cost.Ticks {
		return cost.Ticks(dst-src) * cost.Millisecond
	}))
	p2, _ := f2.Send(0, 2, "req", 1, 0, 0)
	if want := m.NetStack + 2*cost.Millisecond; p2.Arrival != want {
		t.Errorf("topology arrival = %v, want %v", p2.Arrival, want)
	}
}

// TestDeliveryOrder: packets come back in (arrival, dst, seq) order
// regardless of send order.
func TestDeliveryOrder(t *testing.T) {
	m := cost.Model{NetStack: 0, NetPerByte: 0, NetLinkLatency: 0}
	f, _ := New(4, m)
	// Same arrival time, different destinations and send order.
	f.Send(0, 3, "a", 1, 0, 10)
	f.Send(0, 1, "a", 2, 0, 10)
	f.Send(0, 3, "a", 3, 0, 10)
	f.Send(1, 2, "a", 4, 0, 5) // earlier arrival
	var got []string
	for {
		p, ok := f.DeliverNext()
		if !ok {
			if f.InFlight() == 0 {
				break
			}
			continue
		}
		got = append(got, fmt.Sprintf("t%d->d%d", p.Tag, p.Dst))
	}
	want := []string{"t4->d2", "t2->d1", "t1->d3", "t3->d3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("delivery order %v, want %v", got, want)
	}
}

// TestDropAccounting: send-side and delivery-side drops land in the
// right counters and the flow log, and conservation holds.
func TestDropAccounting(t *testing.T) {
	m := cost.DefaultModel()
	f, _ := New(2, m, WithFaults(fault.Any(
		fault.FailOp(fault.PointNetSend, 2, 5),    // second send severed
		fault.FailOp(fault.PointNetDeliver, 2, 5), // second delivery lost
	)))
	for i := 0; i < 4; i++ {
		f.Send(0, 1, "req", uint64(i), 100, 0)
	}
	delivered := f.Deliver(cost.Second)
	if len(delivered) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(delivered))
	}
	s0, s1 := f.Stats(0), f.Stats(1)
	if s0.PacketsSent != 3 || s0.DropsSend != 1 {
		t.Errorf("src stats = %+v, want 3 sent 1 send-drop", s0)
	}
	if s1.PacketsRecv != 2 || s1.DropsRecv != 1 {
		t.Errorf("dst stats = %+v, want 2 recv 1 recv-drop", s1)
	}
	fl := f.Flows()
	if len(fl) != 1 {
		t.Fatalf("flow log has %d entries, want 1", len(fl))
	}
	if fl[0].Packets != 3 || fl[0].Drops != 2 || fl[0].Bytes != 300 {
		t.Errorf("flow = %+v, want 3 packets 2 drops 300 bytes", fl[0])
	}
	// Conservation: everything sent was delivered or dropped.
	tot := f.Totals()
	if tot.PacketsSent != tot.PacketsRecv+tot.DropsRecv {
		t.Errorf("conservation: sent %d != recv %d + recv-drops %d",
			tot.PacketsSent, tot.PacketsRecv, tot.DropsRecv)
	}
}

// TestNetSplitSchedule: a partition drops exactly the straddling
// deliveries during its window.
func TestNetSplitSchedule(t *testing.T) {
	m := cost.Model{} // zero latency: arrival == send time
	split := fault.NetSplit{Isolated: []int{2, 3}, From: 100, Until: 200}
	f, _ := New(4, m, WithFaults(split))
	type c struct {
		src, dst int
		at       cost.Ticks
		want     bool // delivered?
	}
	cases := []c{
		{0, 1, 150, true},  // both outside
		{2, 3, 150, true},  // both inside
		{0, 2, 150, false}, // straddles, inside window
		{2, 0, 150, false}, // straddles, other direction
		{0, 2, 250, true},  // straddles, after healing
		{0, 2, 50, true},   // straddles, before the cut
	}
	for i, tc := range cases {
		f.Send(tc.src, tc.dst, "x", uint64(i), 0, tc.at)
	}
	got := map[uint64]bool{}
	for f.InFlight() > 0 {
		if p, ok := f.DeliverNext(); ok {
			got[p.Tag] = true
		}
	}
	for i, tc := range cases {
		if got[uint64(i)] != tc.want {
			t.Errorf("case %d (%d->%d at %d): delivered=%v, want %v",
				i, tc.src, tc.dst, tc.at, got[uint64(i)], tc.want)
		}
	}
}

// TestReplayDeterminism: the same sends against the same schedule
// replay an identical delivery transcript.
func TestReplayDeterminism(t *testing.T) {
	run := func() string {
		f, _ := New(5, cost.DefaultModel(), WithFaults(fault.NetChaos(7, 0)))
		for i := 0; i < 200; i++ {
			src := i % 5
			dst := (i*3 + 1) % 5
			if src == dst {
				dst = (dst + 1) % 5
			}
			f.Send(src, dst, "f", uint64(i), uint64(i*13%512), cost.Ticks(i)*cost.Microsecond)
		}
		var out string
		for f.InFlight() > 0 {
			if p, ok := f.DeliverNext(); ok {
				out += fmt.Sprintf("%d@%d;", p.Tag, p.Arrival)
			}
		}
		out += fmt.Sprintf("totals=%+v", f.Totals())
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replay diverged:\n%s\n%s", a, b)
	}
}
