// Package net is the deterministic inter-machine message fabric: the
// wire connecting simulated machines into distributed topologies.
//
// A Fabric carries Packets between integer-addressed nodes (machine
// NICs, harness-level clients and load balancers). Send stamps a
// packet with its arrival time — the send time plus the cost model's
// per-frame stack traversal, per-byte serialization, and the link's
// one-way propagation latency — and Deliver hands packets back in
// (arrival time, destination address, sequence) order: exactly the
// machine-id merge the fleet runner uses, so any topology replays
// bit-for-bit at any GOMAXPROCS and any -shards count. CPU-side costs
// are the *caller's* to charge (the kernel NIC does it in net_send /
// net_recv; harness nodes add them to their own clocks); the fabric
// itself only moves virtual time along the wire.
//
// Failure is a first-class input, like everywhere else in the
// simulator: every send consults fault.PointNetSend and every
// delivery fault.PointNetDeliver with Mag = fault.NetMag(src, dst),
// so schedules can sever one directed link (fault.LinkDown), cut a
// set of machines off (fault.NetSplit), or drop a deterministic
// pseudo-random fraction of frames (fault.NetChaos) — and the drops
// replay bit-for-bit too. Dropped packets are counted per node and
// per flow; the retina-style metrics plane (sim/metrics, `forkbench
// metrics`) exports those counters per machine/pool/zone.
package net

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/errno"
	"repro/internal/fault"
)

// Packet is one message in flight (or delivered). The payload is
// priced, not stored: Bytes drives the cost model, Tag carries the
// application correlation word.
type Packet struct {
	Src, Dst int
	Flow     string // flow label for the metrics plane ("req", "resp", ...)
	Tag      uint64
	Bytes    uint64
	Sent     cost.Ticks // send time on the source's clock
	Arrival  cost.Ticks // Sent + stack + serialization + link latency
	seq      uint64     // global send order, the deterministic tie-break
}

// NodeStats is one node's cumulative NIC-level accounting.
type NodeStats struct {
	PacketsSent, PacketsRecv uint64
	BytesSent, BytesRecv     uint64
	// DropsSend counts frames the source uplink severed
	// (PointNetSend); DropsRecv counts frames the fabric lost before
	// delivery (PointNetDeliver) — charged to the would-be receiver.
	DropsSend, DropsRecv uint64
}

// FlowKey identifies one directed (src, dst, label) flow.
type FlowKey struct {
	Src, Dst int
	Flow     string
}

// FlowStats is the per-flow counter set: the fabric's flow log.
type FlowStats struct {
	Packets, Bytes, Drops uint64
}

// Fabric is one network cell's wire. It is single-threaded by design,
// like the machines it connects: one cell is one deterministic
// discrete-event simulation, and host parallelism applies across
// cells (the fleet's machine axis), never within one.
type Fabric struct {
	nodes   int
	model   cost.Model
	sched   fault.Schedule
	latency func(src, dst int) cost.Ticks

	q        packetQueue
	seq      uint64
	sendOps  uint64 // PointNetSend op counter
	delivOps uint64 // PointNetDeliver op counter

	stats []NodeStats
	flows map[FlowKey]*FlowStats
}

// Option configures a Fabric.
type Option func(*Fabric)

// WithLatency overrides the uniform one-way link latency with a pure
// function of the endpoints (zone-aware topologies price cross-zone
// links higher). fn must be deterministic.
func WithLatency(fn func(src, dst int) cost.Ticks) Option {
	return func(f *Fabric) { f.latency = fn }
}

// WithFaults installs the drop schedule consulted at PointNetSend and
// PointNetDeliver.
func WithFaults(s fault.Schedule) Option {
	return func(f *Fabric) { f.sched = s }
}

// New creates a fabric connecting nodes addresses (0..nodes-1) under
// the given cost model.
func New(nodes int, model cost.Model, opts ...Option) (*Fabric, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("net: %d nodes (want >= 1)", nodes)
	}
	f := &Fabric{
		nodes: nodes,
		model: model,
		stats: make([]NodeStats, nodes),
		flows: map[FlowKey]*FlowStats{},
	}
	for _, o := range opts {
		o(f)
	}
	return f, nil
}

// Nodes reports the fabric's address-space size.
func (f *Fabric) Nodes() int { return f.nodes }

func (f *Fabric) linkLatency(src, dst int) cost.Ticks {
	if f.latency != nil {
		return f.latency(src, dst)
	}
	return f.model.NetLinkLatency
}

func (f *Fabric) flow(k FlowKey) *FlowStats {
	fs := f.flows[k]
	if fs == nil {
		fs = &FlowStats{}
		f.flows[k] = fs
	}
	return fs
}

func (f *Fabric) checkAddr(a int) {
	if a < 0 || a >= f.nodes {
		panic(fmt.Sprintf("net: address %d out of range [0,%d)", a, f.nodes))
	}
}

// Send puts one packet on the wire at virtual time now on the
// sender's clock, returning the enqueued packet, or ok=false when the
// fault schedule severed the uplink (the drop is counted against src
// and the flow). The arrival time is now + NetStack + Bytes*NetPerByte
// + link latency; the caller charges the CPU-side share of that to
// its own clock.
func (f *Fabric) Send(src, dst int, flow string, tag, bytes uint64, now cost.Ticks) (Packet, bool) {
	f.checkAddr(src)
	f.checkAddr(dst)
	fl := f.flow(FlowKey{Src: src, Dst: dst, Flow: flow})
	f.sendOps++
	if f.sched != nil {
		op := fault.Op{Point: fault.PointNetSend, Seq: f.sendOps, Time: now, Mag: fault.NetMag(src, dst)}
		if f.sched.Decide(op) != errno.OK {
			f.stats[src].DropsSend++
			fl.Drops++
			return Packet{}, false
		}
	}
	f.seq++
	p := Packet{
		Src: src, Dst: dst, Flow: flow, Tag: tag, Bytes: bytes,
		Sent:    now,
		Arrival: now + f.model.NetStack + cost.Ticks(bytes)*f.model.NetPerByte + f.linkLatency(src, dst),
		seq:     f.seq,
	}
	f.stats[src].PacketsSent++
	f.stats[src].BytesSent += bytes
	fl.Packets++
	fl.Bytes += bytes
	heap.Push(&f.q, p)
	return p, true
}

// NextArrival reports the earliest queued arrival time (ok=false when
// the wire is empty). Dropped-at-delivery packets still occupy the
// queue until Deliver pops them — the drop decision is made at
// delivery time, like a last-hop loss.
func (f *Fabric) NextArrival() (cost.Ticks, bool) {
	if f.q.Len() == 0 {
		return 0, false
	}
	return f.q[0].Arrival, true
}

// Deliver pops and returns every packet arriving at or before until,
// in (arrival, destination, seq) order, consulting the fault schedule
// per packet: dropped ones are counted (against the destination and
// the flow) and omitted from the result.
func (f *Fabric) Deliver(until cost.Ticks) []Packet {
	var out []Packet
	for f.q.Len() > 0 && f.q[0].Arrival <= until {
		if p, ok := f.deliverNext(); ok {
			out = append(out, p)
		}
	}
	return out
}

// DeliverNext pops the earliest queued packet regardless of time,
// returning ok=false if it was dropped at delivery (or the wire is
// empty). Event-loop drivers alternate NextArrival/DeliverNext.
func (f *Fabric) DeliverNext() (Packet, bool) {
	if f.q.Len() == 0 {
		return Packet{}, false
	}
	return f.deliverNext()
}

func (f *Fabric) deliverNext() (Packet, bool) {
	p := heap.Pop(&f.q).(Packet)
	f.delivOps++
	if f.sched != nil {
		op := fault.Op{Point: fault.PointNetDeliver, Seq: f.delivOps, Time: p.Arrival, Mag: fault.NetMag(p.Src, p.Dst)}
		if f.sched.Decide(op) != errno.OK {
			f.stats[p.Dst].DropsRecv++
			f.flow(FlowKey{Src: p.Src, Dst: p.Dst, Flow: p.Flow}).Drops++
			return Packet{}, false
		}
	}
	f.stats[p.Dst].PacketsRecv++
	f.stats[p.Dst].BytesRecv += p.Bytes
	return p, true
}

// InFlight reports how many packets are queued on the wire.
func (f *Fabric) InFlight() int { return f.q.Len() }

// Stats returns node addr's cumulative counters.
func (f *Fabric) Stats(addr int) NodeStats {
	f.checkAddr(addr)
	return f.stats[addr]
}

// Totals sums every node's counters (drops counted once per drop:
// send-side drops appear only in DropsSend, delivery drops only in
// DropsRecv).
func (f *Fabric) Totals() NodeStats {
	var t NodeStats
	for _, s := range f.stats {
		t.PacketsSent += s.PacketsSent
		t.PacketsRecv += s.PacketsRecv
		t.BytesSent += s.BytesSent
		t.BytesRecv += s.BytesRecv
		t.DropsSend += s.DropsSend
		t.DropsRecv += s.DropsRecv
	}
	return t
}

// Flow is one entry of the flow log: key plus counters.
type Flow struct {
	FlowKey
	FlowStats
}

// Flows returns the flow log sorted by (src, dst, label) — a
// deterministic render order for the metrics plane.
func (f *Fabric) Flows() []Flow {
	out := make([]Flow, 0, len(f.flows))
	for k, fs := range f.flows {
		out = append(out, Flow{FlowKey: k, FlowStats: *fs})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Flow < b.Flow
	})
	return out
}

// packetQueue is the wire: a min-heap ordered by (arrival,
// destination address, send seq). The destination tie-break is the
// fleet's machine-id merge; the seq tie-break makes same-instant
// same-destination deliveries follow send order.
type packetQueue []Packet

func (q packetQueue) Len() int { return len(q) }
func (q packetQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	return a.seq < b.seq
}
func (q packetQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *packetQueue) Push(x any)   { *q = append(*q, x.(Packet)) }
func (q *packetQueue) Pop() any {
	old := *q
	n := len(old)
	p := old[n-1]
	*q = old[:n-1]
	return p
}
