package metrics

import (
	"strings"
	"testing"
)

// TestRenderFormatAndOrder pins the exposition format: HELP/TYPE
// lines, families sorted by name, samples sorted by label signature,
// integral floats rendered without a decimal point.
func TestRenderFormatAndOrder(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("zeta_util", "utilization")
	g.Set(0.25, "cpu", "0")
	c := r.Counter("alpha_total", "events")
	c.Add(1, "kind", "b")
	c.Add(2, "kind", "a")
	c.Add(3, "kind", "b")
	r.Counter("mid_total", "no labels").Add(7)

	want := strings.Join([]string{
		"# HELP alpha_total events",
		"# TYPE alpha_total counter",
		`alpha_total{kind="a"} 2`,
		`alpha_total{kind="b"} 4`,
		"# HELP mid_total no labels",
		"# TYPE mid_total counter",
		"mid_total 7",
		"# HELP zeta_util utilization",
		"# TYPE zeta_util gauge",
		`zeta_util{cpu="0"} 0.25`,
		"",
	}, "\n")
	if got := r.Render(); got != want {
		t.Errorf("render:\n%s\nwant:\n%s", got, want)
	}
}

// TestLabelEscaping: backslashes, quotes, and newlines in label
// values survive round-tripping through the format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h").Add(1, "p", `a\b"c`+"\n")
	if got := r.Render(); !strings.Contains(got, `x_total{p="a\\b\"c\n"} 1`) {
		t.Errorf("escaping broken:\n%s", got)
	}
}

// TestIdempotentRegistration: re-registering a family returns the
// same Vec; a kind clash panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	if b := r.Counter("x_total", "h"); a != b {
		t.Error("re-registration created a new Vec")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

// TestRenderDeterminism: map-backed storage must not leak host map
// ordering into the bytes.
func TestRenderDeterminism(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		v := r.Counter("m_total", "h")
		for i := 0; i < 50; i++ {
			v.Add(float64(i), "i", string(rune('a'+i%26)), "j", string(rune('A'+i%13)))
		}
		return r.Render()
	}
	first := build()
	for i := 0; i < 10; i++ {
		if again := build(); again != first {
			t.Fatalf("render %d diverged", i)
		}
	}
}
