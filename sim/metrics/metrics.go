// Package metrics is the retina-style metrics plane: a tiny,
// dependency-free registry of counters and gauges rendered in the
// Prometheus text exposition format. Unlike a production client it is
// built for determinism first — Render sorts metric families by name
// and samples by label signature, so the same simulated run produces
// the same bytes, which is what lets `forkbench metrics` output be
// frozen as CI goldens.
package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind is a metric family's type, rendered in the # TYPE line.
type Kind int

// Metric kinds.
const (
	Counter Kind = iota
	Gauge
)

func (k Kind) String() string {
	if k == Gauge {
		return "gauge"
	}
	return "counter"
}

// Vec is one metric family: a name, help text, a kind, and one sample
// per distinct label signature.
type Vec struct {
	name, help string
	kind       Kind
	samples    map[string]float64
}

// Registry holds metric families and renders them deterministically.
type Registry struct {
	vecs map[string]*Vec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{vecs: map[string]*Vec{}} }

func (r *Registry) vec(kind Kind, name, help string) *Vec {
	if v, ok := r.vecs[name]; ok {
		if v.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %v (was %v)", name, kind, v.kind))
		}
		return v
	}
	v := &Vec{name: name, help: help, kind: kind, samples: map[string]float64{}}
	r.vecs[name] = v
	return v
}

// Counter registers (or returns) the counter family name.
func (r *Registry) Counter(name, help string) *Vec { return r.vec(Counter, name, help) }

// Gauge registers (or returns) the gauge family name.
func (r *Registry) Gauge(name, help string) *Vec { return r.vec(Gauge, name, help) }

// labelSig renders a label set as its exposition signature:
// {k1="v1",k2="v2"} in the order given ("" with no labels). kv
// alternates name, value; an odd count is a programming error.
func labelSig(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list %q", kv))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escape(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escape applies the exposition format's label-value escaping.
func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Add adds delta to the sample with the given labels (name, value
// pairs), creating it at zero first.
func (v *Vec) Add(delta float64, kv ...string) {
	v.samples[labelSig(kv)] += delta
}

// Set sets the sample with the given labels.
func (v *Vec) Set(value float64, kv ...string) {
	v.samples[labelSig(kv)] = value
}

// Render produces the registry in Prometheus text exposition format:
// families sorted by name, each with # HELP and # TYPE lines, samples
// sorted by label signature. Byte-deterministic for identical
// contents.
func (r *Registry) Render() string {
	names := make([]string, 0, len(r.vecs))
	for n := range r.vecs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		v := r.vecs[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", v.name, v.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", v.name, v.kind)
		sigs := make([]string, 0, len(v.samples))
		for s := range v.samples {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		for _, s := range sigs {
			fmt.Fprintf(&b, "%s%s %s\n", v.name, s, strconv.FormatFloat(v.samples[s], 'g', -1, 64))
		}
	}
	return b.String()
}
