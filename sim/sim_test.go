package sim_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/sim"
)

func newSys(t *testing.T, opts ...sim.Option) *sim.System {
	t.Helper()
	sys, err := sim.NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// --- golden exit codes -------------------------------------------

func TestExitCodeZero(t *testing.T) {
	sys := newSys(t)
	cmd := sys.Command("true")
	if err := cmd.Run(); err != nil {
		t.Fatalf("true: %v", err)
	}
	if ps := cmd.ProcessState; !ps.Success() || ps.ExitCode() != 0 || ps.Signaled() {
		t.Errorf("state = %v", ps)
	}
}

func TestExitCodeNonZero(t *testing.T) {
	sys := newSys(t)
	err := sys.Command("false").Run()
	ee := sim.AsExitError(err)
	if ee == nil {
		t.Fatalf("want *ExitError, got %v", err)
	}
	if ee.ExitCode() != 1 || ee.Signaled() {
		t.Errorf("state = %v", ee.ProcessState)
	}
}

// --- signal deaths ------------------------------------------------

func TestSignalDeath(t *testing.T) {
	sys := newSys(t)
	err := sys.Command("segv").Run()
	ee := sim.AsExitError(err)
	if ee == nil {
		t.Fatalf("want *ExitError, got %v", err)
	}
	if !ee.Signaled() || ee.Signal() != sim.SIGSEGV {
		t.Errorf("signal = %v, want SIGSEGV", ee.Signal())
	}
	if ee.ExitCode() != -1 {
		t.Errorf("ExitCode = %d, want -1 for signal death", ee.ExitCode())
	}
	if !strings.Contains(ee.Error(), "SIGSEGV") {
		t.Errorf("error text %q does not name the signal", ee.Error())
	}
}

// --- stdio plumbing ----------------------------------------------

func TestOutput(t *testing.T) {
	sys := newSys(t)
	out, err := sys.Command("echo", "hello", "road").Output()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hello road\n" {
		t.Errorf("out = %q", out)
	}
}

func TestStdinFromHostReader(t *testing.T) {
	sys := newSys(t)
	cmd := sys.Command("cat")
	cmd.Stdin = strings.NewReader("fed from the host\n")
	out, err := cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "fed from the host\n" {
		t.Errorf("out = %q", out)
	}
}

func TestStderrSharesStdout(t *testing.T) {
	sys := newSys(t)
	var buf bytes.Buffer
	cmd := sys.Command("echo", "both")
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "both\n" {
		t.Errorf("out = %q", buf.String())
	}
}

// TestPipeBetweenCommands wires echo | cat through a simulated pipe —
// the §6.1 shell pattern on the public API.
func TestPipeBetweenCommands(t *testing.T) {
	sys := newSys(t)
	r, w := sys.Pipe()

	left := sys.Command("echo", "through", "the", "pipe")
	left.Stdout = w
	right := sys.Command("cat")
	right.Stdin = r

	var out bytes.Buffer
	right.Stdout = &out

	if err := left.Start(); err != nil {
		t.Fatal(err)
	}
	if err := right.Start(); err != nil {
		t.Fatal(err)
	}
	// Drop the host's ends so the reader can see EOF.
	w.Close()
	r.Close()
	if err := left.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := right.Wait(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "through the pipe\n" {
		t.Errorf("out = %q", out.String())
	}
}

// progFD3 writes a marker to fd 3 — only inheritable via ExtraFiles.
const progFD3 = `
_start:
    movi r0, 3
    li r1, fd3_msg
    call fputs
    movi r0, 0
    sys SYS_EXIT
.data
fd3_msg: .asciz "via fd3"
`

func TestExtraFilesInheritance(t *testing.T) {
	sys := newSys(t, sim.WithProgram("/bin/fd3", progFD3))
	r, w := sys.Pipe()
	cmd := sys.Command("/bin/fd3")
	cmd.ExtraFiles = []*sim.File{w}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "via fd3" {
		t.Errorf("fd3 payload = %q", buf[:n])
	}
}

// progRelOpen opens the file "note" relative to the working directory
// and copies it to stdout — exercises Cmd.Dir end to end.
const progRelOpen = `
_start:
    li r0, ro_name
    movi r1, 0
    sys SYS_OPEN
    movi r3, 0
    blt r0, r3, ro_fail      ; negative return = errno
    mov r10, r0              ; fd
    addi sp, sp, -64
    mov r1, sp
    mov r0, r10
    movi r2, 64
    sys SYS_READ
    mov r2, r0               ; bytes read
    mov r1, sp
    movi r0, 1
    sys SYS_WRITE
    movi r0, 0
    sys SYS_EXIT
ro_fail:
    movi r0, 1
    sys SYS_EXIT
.data
ro_name: .asciz "note"
`

func TestDirSetsWorkingDirectory(t *testing.T) {
	sys := newSys(t, sim.WithProgram("/bin/relopen", progRelOpen))
	if err := sys.WriteFile("/tmp/note", []byte("found in /tmp")); err != nil {
		t.Fatal(err)
	}
	cmd := sys.Command("/bin/relopen")
	cmd.Dir = "/tmp"
	out, err := cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "found in /tmp" {
		t.Errorf("out = %q", out)
	}
}

// --- the tentpole guarantee: one workload, five creation APIs ----

// TestAllStrategiesIdenticalOutput runs the same program through every
// process-creation strategy the paper compares and asserts the
// observable output is identical — the acceptance bar for Via.
func TestAllStrategiesIdenticalOutput(t *testing.T) {
	const want = "a fork in the road\n"
	sys := newSys(t)
	got := map[sim.Strategy]string{}
	for _, st := range sim.Strategies() {
		var buf bytes.Buffer
		cmd := sys.Command("echo", "a", "fork", "in", "the", "road").Via(st)
		cmd.Stdout = &buf
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		got[st] = buf.String()
	}
	for st, out := range got {
		if out != want {
			t.Errorf("%v produced %q, want %q", st, out, want)
		}
	}
}

// TestStrategiesReportCreationCost checks the measurement path: a
// dirty 16 MiB host makes fork-family creation strictly dearer than
// spawn, which Figure 1 is built on.
func TestStrategiesReportCreationCost(t *testing.T) {
	sys := newSys(t, sim.WithUserland("true"))
	if err := sys.DirtyHost(16<<20, false); err != nil {
		t.Fatal(err)
	}
	costs := map[sim.Strategy]int64{}
	for _, st := range sim.Strategies() {
		p, err := sys.Command("true").Via(st).Create()
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if p.CreationCost() <= 0 {
			t.Errorf("%v: creation cost %v, want > 0", st, p.CreationCost())
		}
		costs[st] = int64(p.CreationCost())
		p.Destroy()
	}
	if costs[sim.Spawn] >= costs[sim.EmulatedFork] {
		t.Errorf("spawn (%d) should be far cheaper than emulated fork (%d) for a 16MiB parent",
			costs[sim.Spawn], costs[sim.EmulatedFork])
	}
}

// --- process lifecycle -------------------------------------------

func TestCreateParksUntilStart(t *testing.T) {
	sys := newSys(t)
	var buf bytes.Buffer
	cmd := sys.Command("echo", "parked")
	cmd.Stdout = &buf
	p, err := cmd.Create()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "parked\n" {
		t.Errorf("out = %q", buf.String())
	}
}

func TestWaitTwiceReturnsCachedState(t *testing.T) {
	sys := newSys(t)
	cmd := sys.Command("true")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ps1, err := cmd.Process.Wait()
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := cmd.Process.Wait()
	if err != nil || ps1 != ps2 {
		t.Errorf("second Wait = (%v, %v), want cached state", ps2, err)
	}
}

func TestRunBudgetStopsRunaway(t *testing.T) {
	const spin = `
_start:
    b _start
`
	sys := newSys(t, sim.WithProgram("/bin/spin", spin), sim.WithRunBudget(100_000))
	err := sys.Command("/bin/spin").Run()
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestDeadlockSurfacesTyped(t *testing.T) {
	sys := newSys(t, sim.WithRunBudget(10_000_000))
	err := sys.Command("threads_deadlock").Run()
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want *DeadlockError, got %v", err)
	}
	if len(dl.Threads) == 0 {
		t.Error("deadlock report names no threads")
	}
}

func TestClosedFileReportsErrorNotPanic(t *testing.T) {
	sys := newSys(t)
	r, w := sys.Pipe()
	r.Close()
	w.Close()
	if _, err := r.Read(make([]byte, 1)); err == nil {
		t.Error("Read after Close succeeded")
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("Write after Close succeeded")
	}
}

// TestDeviceNodesCleanedUpViaProcessWait waits through Process.Wait
// (not Cmd.Wait) and checks the per-command /dev nodes are unlinked.
func TestDeviceNodesCleanedUpViaProcessWait(t *testing.T) {
	sys := newSys(t)
	var buf bytes.Buffer
	cmd := sys.Command("echo", "tidy")
	cmd.Stdout = &buf
	p, err := cmd.Create()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	devs, err := sys.ReadDir("/dev")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		if strings.HasPrefix(d, "cmd") {
			t.Errorf("leaked device node /dev/%s", d)
		}
	}
}

func TestCommandBareNameResolvesToBin(t *testing.T) {
	sys := newSys(t)
	cmd := sys.Command("true")
	if cmd.Path != "/bin/true" {
		t.Errorf("Path = %q", cmd.Path)
	}
}

func TestProgramsListsUserland(t *testing.T) {
	names := sim.Programs()
	found := false
	for _, n := range names {
		if n == "echo" {
			found = true
		}
	}
	if !found {
		t.Errorf("Programs() = %v, missing echo", names)
	}
}

func ExampleSystem_Command() {
	sys, _ := sim.NewSystem()
	out, _ := sys.Command("echo", "no", "forks", "given").Output()
	fmt.Print(string(out))
	// Output: no forks given
}

// --- SMP ----------------------------------------------------------

// TestWithCPUsIdenticalOutput: the same pipeline produces the same
// bytes at every CPU count — parallelism changes virtual timing, never
// results.
func TestWithCPUsIdenticalOutput(t *testing.T) {
	var want []byte
	for _, cpus := range []int{1, 2, 8} {
		sys := newSys(t, sim.WithCPUs(cpus))
		if got := sys.NumCPUs(); got != cpus {
			t.Fatalf("NumCPUs = %d, want %d", got, cpus)
		}
		out, err := sys.Command("echo", "same", "on", "every", "machine").Via(sim.ForkExec).Output()
		if err != nil {
			t.Fatalf("%d CPUs: %v", cpus, err)
		}
		if want == nil {
			want = out
		} else if !bytes.Equal(out, want) {
			t.Errorf("%d CPUs produced %q, want %q", cpus, out, want)
		}
		st := sys.Stats()
		if st.NumCPUs != cpus || len(st.CPUBusy) != cpus || len(st.CPUUtilization) != cpus {
			t.Errorf("Stats per-CPU shape wrong: %+v", st)
		}
		if cpus == 1 && st.TLBShootdowns != 0 {
			t.Errorf("1-CPU machine charged %d shootdown IPIs", st.TLBShootdowns)
		}
	}
}

// TestWithCPUsRejectsBadCount: option validation surfaces the kernel's
// explicit error instead of clamping.
func TestWithCPUsRejectsBadCount(t *testing.T) {
	if _, err := sim.NewSystem(sim.WithCPUs(-3)); err == nil {
		t.Error("negative CPU count accepted")
	}
	if _, err := sim.NewSystem(sim.WithCPUs(65)); err == nil {
		t.Error("65-CPU machine accepted (limit is 64)")
	}
}

// TestProcessStateCPUTime: a finished process reports the virtual CPU
// time it executed, per CPU.
func TestProcessStateCPUTime(t *testing.T) {
	sys := newSys(t, sim.WithCPUs(2))
	cmd := sys.Command("echo", "hi")
	cmd.Stdout = new(bytes.Buffer)
	if err := cmd.Run(); err != nil {
		t.Fatal(err)
	}
	ps := cmd.ProcessState
	if ps.CPUTime() <= 0 {
		t.Errorf("CPUTime = %v, want > 0", ps.CPUTime())
	}
	times := ps.CPUTimes()
	if len(times) != 2 {
		t.Fatalf("CPUTimes has %d entries", len(times))
	}
	var sum int64
	for _, d := range times {
		sum += int64(d)
	}
	if int64(ps.CPUTime()) != sum {
		t.Errorf("CPUTime %v != sum of per-CPU times %v", ps.CPUTime(), sum)
	}
}
