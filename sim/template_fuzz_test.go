package sim_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/sim"
	"repro/sim/fault"
)

// templateEpisode is FuzzTemplateClone's body: boot a machine, run a
// fuzzer-chosen number of warm-up requests, Snapshot mid-workload,
// stamp a fuzzer-chosen number of clones, arm a different random fault
// schedule on each clone *after* stamping, and drive requests through
// all of them, logging every outcome. It enforces the template
// invariants as it goes — no clone's faults or writes perturb the
// frozen master, every clone returns to its post-stamp baseline once
// its schedule is disarmed and its children reaped, and two pristine
// clones produce identical metrics — and returns a transcript that
// must replay byte-for-byte for the same inputs.
func templateEpisode(via sim.Strategy, warmups, nClones int, seed, perMille uint64) (string, error) {
	sys, err := sim.NewSystem(sim.WithRAM(64<<20), sim.WithUserland("true"))
	if err != nil {
		return "", err
	}
	if err := sys.DirtyHost(256<<10, false); err != nil {
		return "", err
	}
	// The NIC is machine state too: attach a fabric address and land
	// two frames before the freeze, so every clone must come up with
	// the address and the receive counters intact (the regression that
	// motivated this: CloneInto once dropped the nic field wholesale).
	addr := 1 + int(seed%100)
	sys.Kernel().NetAttach(addr)
	sys.Kernel().NetInject(kernel.NetFrame{Src: 9, Dst: addr, Tag: seed % 1000, Bytes: 64})
	sys.Kernel().NetInject(kernel.NetFrame{Src: 9, Dst: addr, Tag: (seed + 1) % 1000, Bytes: 192})
	// Clean warm-up, then freeze mid-workload: the snapshot point is
	// fuzzer-chosen, not a quiesced machine.
	for i := 0; i < warmups; i++ {
		if err := sys.Command("true").Via(via).Run(); err != nil {
			return "", fmt.Errorf("warmup %d: %w", i, err)
		}
	}
	tpl, err := sys.Snapshot()
	if err != nil {
		return "", err
	}
	tk := tpl.Kernel()
	baseProcs := tk.ProcessCount()
	basePages := tk.Phys().AllocatedPages()

	var out strings.Builder
	for ci := 0; ci < nClones; ci++ {
		clone, err := tpl.Clone()
		if err != nil {
			return "", fmt.Errorf("clone %d: %w", ci, err)
		}
		// The clone's NIC must carry the master's address and counters.
		ck := clone.Kernel()
		if got := ck.NetAddr(); got != addr {
			return "", fmt.Errorf("clone %d NIC addr = %d, want %d", ci, got, addr)
		}
		if _, fr, _, br := ck.NetStats(); fr != 2 || br != 256 {
			return "", fmt.Errorf("clone %d NIC recv counters = %d frames/%dB, want 2/256B", ci, fr, br)
		}
		base := snapshot(clone)
		// Post-clone fault schedule, different per clone.
		clone.SetFaultSchedule(fault.Random(seed+uint64(ci), ci, perMille, fault.ENOMEM))
		for i := 0; i < 4; i++ {
			err := clone.Command("true").Via(via).Run()
			fmt.Fprintf(&out, "clone%d req%d err=%v\n", ci, i, err)
		}
		clone.SetFaultSchedule(fault.Observe())
		if got := snapshot(clone); got != base {
			return "", fmt.Errorf("clone %d leaked under faults: %+v, baseline %+v\ntranscript:\n%s",
				ci, got, base, out.String())
		}
		fmt.Fprintf(&out, "clone%d injected=%d\n", ci, clone.Faults().Injected())
	}

	// No clone's faults or writes may have reached the frozen master.
	if got := tk.ProcessCount(); got != baseProcs {
		return "", fmt.Errorf("template process count moved: %d, want %d", got, baseProcs)
	}
	if got := tk.Phys().AllocatedPages(); got != basePages {
		return "", fmt.Errorf("template resident pages moved: %d, want %d", got, basePages)
	}
	if got := tk.NetAddr(); got != addr {
		return "", fmt.Errorf("template NIC addr moved: %d, want %d", got, addr)
	}

	// Cross-clone bleed check: two pristine clones stamped after all
	// the faulty ones must behave identically to each other.
	var stats [2]string
	for i := range stats {
		c, err := tpl.Clone()
		if err != nil {
			return "", err
		}
		if err := c.Command("true").Via(via).Run(); err != nil {
			return "", fmt.Errorf("pristine clone %d: %w", i, err)
		}
		stats[i] = fmt.Sprintf("%+v", c.Stats())
	}
	if stats[0] != stats[1] {
		return "", fmt.Errorf("pristine clones diverged (cross-clone bleed):\nfirst:  %s\nsecond: %s",
			stats[0], stats[1])
	}
	out.WriteString(stats[0] + "\n")
	return out.String(), nil
}

// FuzzTemplateClone throws random snapshot points, clone counts, and
// post-clone fault schedules at the template machinery: whatever the
// fuzzer invents, Snapshot/Clone must not panic, must not let one
// clone's state bleed into a sibling or the frozen master, must not
// leak on fault-torn requests, and must replay deterministically —
// the failing tuple is its own reproducer. Runs in CI fuzz-smoke.
func FuzzTemplateClone(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint8(2), uint64(1), uint64(100))
	f.Add(uint8(0), uint8(0), uint8(3), uint64(42), uint64(500))
	f.Add(uint8(4), uint8(3), uint8(1), uint64(7), uint64(0))
	f.Add(uint8(1), uint8(2), uint8(2), uint64(0xdeadbeef), uint64(950))
	f.Fuzz(func(t *testing.T, viaIdx, warmups, nClones uint8, seed, perMille uint64) {
		all := allStrategies()
		via := all[int(viaIdx)%len(all)]
		w := int(warmups) % 4
		n := 1 + int(nClones)%3
		perMille %= 1001
		first, err := templateEpisode(via, w, n, seed, perMille)
		if err != nil {
			t.Fatal(err)
		}
		second, err := templateEpisode(via, w, n, seed, perMille)
		if err != nil {
			t.Fatalf("replay failed where first run passed: %v", err)
		}
		if first != second {
			t.Fatalf("episode (via=%v warmups=%d clones=%d seed=%d rate=%d‰) did not replay deterministically:\nfirst:\n%s\nsecond:\n%s",
				via, w, n, seed, perMille, first, second)
		}
	})
}
