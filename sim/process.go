package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/abi"
	"repro/internal/kernel"
	"repro/internal/sig"
)

// Signal is a simulated signal number (POSIX numbering). It aliases
// the substrate's type so values flow both ways without conversion.
type Signal = sig.Signal

// Re-exported signal numbers.
const (
	SIGHUP  = sig.SIGHUP
	SIGINT  = sig.SIGINT
	SIGQUIT = sig.SIGQUIT
	SIGKILL = sig.SIGKILL
	SIGUSR1 = sig.SIGUSR1
	SIGSEGV = sig.SIGSEGV
	SIGUSR2 = sig.SIGUSR2
	SIGPIPE = sig.SIGPIPE
	SIGTERM = sig.SIGTERM
	SIGCHLD = sig.SIGCHLD
)

// DeadlockError aliases the kernel's deadlock report: Wait returns one
// when live threads exist but none can ever run again (the §4.2
// fork-composition trap, caught in the act).
type DeadlockError = kernel.DeadlockError

// Process is a typed handle on a running (or parked) simulated
// process, returned by Cmd.Start and Cmd.Create.
type Process struct {
	sys      *System
	raw      *kernel.Process
	creation time.Duration
	state    *ProcessState
	cleanup  func() // unlinks the Cmd's per-command device nodes
}

func (p *Process) runCleanup() {
	if p.cleanup != nil {
		p.cleanup()
	}
}

// Pid returns the simulated process id.
func (p *Process) Pid() int { return int(p.raw.Pid) }

// Raw exposes the substrate process (advanced: cross-process memory,
// address-space inspection).
func (p *Process) Raw() *kernel.Process { return p.raw }

// CreationCost reports the virtual time the creation strategy spent
// constructing this process — the quantity on Figure 1's y-axis.
func (p *Process) CreationCost() time.Duration { return p.creation }

// Start makes a parked process (from Cmd.Create) runnable.
func (p *Process) Start() error {
	return p.sys.k.StartProcess(p.raw)
}

// Signal delivers s to the process (kill(2)).
func (p *Process) Signal(s Signal) error {
	return p.sys.k.SendSignal(p.raw, s)
}

// Kill delivers SIGKILL.
func (p *Process) Kill() error { return p.Signal(sig.SIGKILL) }

// Destroy force-removes the process (harness cleanup for parked or
// measurement children that will never run).
func (p *Process) Destroy() {
	p.sys.k.DestroyProcess(p.raw)
	p.runCleanup()
}

// Wait drives the machine until the process exits, reaps it, and
// returns its decoded state. Virtual time advances inside this call —
// sibling processes run too, so pipelines drain naturally. Waiting
// again returns the cached state.
func (p *Process) Wait() (*ProcessState, error) {
	if p.state != nil {
		return p.state, nil
	}
	k := p.sys.k
	if p.raw.State() == kernel.ProcAlive {
		// One Run drives the machine to completion, deadlock, or the
		// budget — the budget is per Wait, not re-armed in a loop.
		err := k.Run(kernel.RunLimits{MaxInstructions: p.sys.runBudget})
		switch {
		case p.raw.State() != kernel.ProcAlive:
			// Exited; a concurrent deadlock elsewhere is not ours.
		case err != nil:
			return nil, err // *DeadlockError naming the stuck threads
		case k.LastStop() == kernel.StopLimit:
			return nil, fmt.Errorf("sim: %s (pid %d): run budget of %d instructions exhausted",
				p.raw.Name, p.raw.Pid, p.sys.runBudget)
		default:
			return nil, fmt.Errorf("sim: %s (pid %d): machine idle but process never exited (parked?)",
				p.raw.Name, p.raw.Pid)
		}
	}
	status := p.raw.ExitStatus()
	oom := p.raw.OOMKilled()
	cpuTicks := p.raw.CPUTicks()
	if p.raw.State() == kernel.ProcZombie {
		if _, _, err := k.WaitReap(p.raw.Parent(), p.raw.Pid); err != nil {
			return nil, fmt.Errorf("sim: reap pid %d: %w", p.raw.Pid, err)
		}
	}
	cpuTimes := make([]time.Duration, len(cpuTicks))
	for i, ct := range cpuTicks {
		cpuTimes[i] = time.Duration(ct)
	}
	p.state = &ProcessState{pid: int(p.raw.Pid), status: status, oomKilled: oom, cpuTimes: cpuTimes}
	p.runCleanup()
	return p.state, nil
}

// ProcessState is the decoded exit state of a finished process — no
// raw status words, matching os.ProcessState.
type ProcessState struct {
	pid       int
	status    uint64
	oomKilled bool
	cpuTimes  []time.Duration
}

// Pid returns the process id.
func (ps *ProcessState) Pid() int { return ps.pid }

// CPUTimes returns the virtual time the process's threads executed on
// each simulated CPU (index = CPU id) — on a multi-CPU machine a
// multithreaded process shows time on several.
func (ps *ProcessState) CPUTimes() []time.Duration {
	return append([]time.Duration(nil), ps.cpuTimes...)
}

// CPUTime returns total virtual execution time across all CPUs
// (os.ProcessState.SystemTime+UserTime analogue).
func (ps *ProcessState) CPUTime() time.Duration {
	var total time.Duration
	for _, d := range ps.cpuTimes {
		total += d
	}
	return total
}

// Exited reports whether the process exited normally (not signaled).
func (ps *ProcessState) Exited() bool { return abi.StatusSignal(ps.status) == 0 }

// ExitCode returns the exit code, or -1 if the process was signaled.
func (ps *ProcessState) ExitCode() int {
	if ps.Signaled() {
		return -1
	}
	return abi.StatusExitCode(ps.status)
}

// Signaled reports whether a signal terminated the process.
func (ps *ProcessState) Signaled() bool { return abi.StatusSignal(ps.status) != 0 }

// Signal returns the terminating signal (0 if none).
func (ps *ProcessState) Signal() Signal { return Signal(abi.StatusSignal(ps.status)) }

// OOMKilled reports death by the OOM killer.
func (ps *ProcessState) OOMKilled() bool { return ps.oomKilled }

// Success reports a normal exit with code 0.
func (ps *ProcessState) Success() bool { return ps.Exited() && ps.ExitCode() == 0 }

// Sys returns the raw abi-encoded status word (substrate access).
func (ps *ProcessState) Sys() uint64 { return ps.status }

func (ps *ProcessState) String() string {
	switch {
	case ps.oomKilled:
		return fmt.Sprintf("oom-killed (%v)", ps.Signal())
	case ps.Signaled():
		return fmt.Sprintf("signal: %v", ps.Signal())
	default:
		return fmt.Sprintf("exit status %d", ps.ExitCode())
	}
}

// ExitError reports an unsuccessful exit from Cmd.Wait/Run/Output,
// exactly like exec.ExitError.
type ExitError struct {
	*ProcessState
}

func (e *ExitError) Error() string { return e.ProcessState.String() }

// AsExitError unwraps err into an *ExitError, or nil.
func AsExitError(err error) *ExitError {
	var ee *ExitError
	if errors.As(err, &ee) {
		return ee
	}
	return nil
}
