package load

import (
	"fmt"
	"strings"

	"repro/internal/addrspace"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/sim"
	"repro/sim/fault"
)

// Scenario names a workload shape. The string form is the CLI name.
type Scenario string

// Scenarios.
const (
	Prefork    Scenario = "prefork"
	Pipeline   Scenario = "pipeline"
	Checkpoint Scenario = "checkpoint"
	ForkStorm  Scenario = "forkstorm"
	SMPServer  Scenario = "smpserver"
	BuildFarm  Scenario = "buildfarm"

	// Distributed scenarios: multi-machine cells over the sim/net
	// fabric (see net.go). NetLB is a load balancer fronting a pool
	// of fork-/spawn-backed servers; KVShard is a shard-per-machine
	// KV service with client retries.
	NetLB   Scenario = "netlb"
	KVShard Scenario = "kvshard"

	// Migrate live-migrates a resident process between two machines
	// over the fabric: iterative pre-copy on the COW dirty tracking,
	// then stop-and-copy of the residue (see migrate.go). Requests is
	// migrations performed, Workers the pre-copy rounds per migration.
	Migrate Scenario = "migrate"
)

// Scenarios lists every workload, in a fixed order.
func Scenarios() []Scenario {
	return []Scenario{Prefork, Pipeline, Checkpoint, ForkStorm, SMPServer, BuildFarm, NetLB, KVShard, Migrate}
}

// ParseScenario maps a CLI name to its Scenario.
func ParseScenario(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if name == string(s) {
			return s, nil
		}
	}
	return "", fmt.Errorf("load: unknown scenario %q (prefork|pipeline|checkpoint|forkstorm|smpserver|buildfarm|netlb|kvshard|migrate)", name)
}

// Config parameterizes one run. The zero value of every field selects
// a sensible default; Scenario defaults to Prefork and Via to
// sim.Spawn (sim's own default).
type Config struct {
	// Scenario selects the workload shape.
	Scenario Scenario

	// Via is the process-creation strategy every child in the
	// scenario is created through.
	Via sim.Strategy

	// CPUs is the simulated CPU count (default 1). Scenarios scale
	// with it: Prefork keeps CPUs requests in flight, ForkStorm's
	// default burst and Pipeline's default volume grow with it, the
	// SMPServer runs one worker thread per CPU, and BuildFarm keeps
	// 2*CPUs jobs in flight.
	CPUs int

	// Requests is the closed-loop unit count: requests drained
	// (Prefork), pipelines built (Pipeline), snapshot cycles
	// (Checkpoint), or waves (ForkStorm).
	Requests int

	// Workers is the pipeline depth (Pipeline, default 3) or the
	// burst size of simultaneously live children (ForkStorm,
	// default 64).
	Workers int

	// Window overrides the closed loop's in-flight request window:
	// how many requests Prefork (default CPUs) or BuildFarm jobs
	// (default 2*CPUs) are live at once. sim/fleet's traffic-surge
	// scenario widens it to model load spikes beyond the machine's
	// steady state.
	Window int

	// HeapBytes is the server's dirty anonymous heap — the paper's
	// "parent of size X" under sustained load (default 64 MiB).
	HeapBytes uint64

	// MutateBytes is how much of the heap the Checkpoint server
	// rewrites between snapshots, each page paying a COW break
	// while the snapshot holds the old view (default HeapBytes/8).
	MutateBytes uint64

	// RAMBytes sizes the machine (default 4×HeapBytes, minimum
	// 1 GiB).
	RAMBytes uint64

	// HugePages backs the heap with 2 MiB mappings.
	HugePages bool

	// Nodes is the distributed scenarios' machine count: backends
	// behind the NetLB balancer (default 2) or KVShard shards
	// (default 3). The single-machine scenarios ignore it.
	Nodes int

	// RequestWorkMiB gives every request served by a Server a private
	// working set: the worker allocates and write-touches this many
	// MiB (the hog program) before exiting, so a request costs CPU
	// and memory beyond its creation. Used by Server/ServeBatch
	// (sim/cluster's per-request body); the scenario drivers ignore
	// it. 0 = no per-request working set.
	RequestWorkMiB int

	// OnSample, when non-nil, receives a mid-run metric Snapshot at
	// every driver sample point — the peak-occupancy instants the
	// scenarios already probe for the RSS high-water mark. The hook
	// runs on the driver's goroutine inside virtual time; it must not
	// mutate the machine. sim/cluster's autoscaler watches machines
	// through it.
	OnSample func(Snapshot)

	// Faults, when non-nil, runs the measured loop in chaos mode:
	// the schedule is installed after warm-up (so setup stays
	// clean), per-request failures are tolerated and counted in
	// Metrics.FailedRequests instead of aborting the run, and the
	// driver consults fault.PointKill once per request so kill-wave
	// schedules can crash in-flight workers. Only the failure-
	// tolerant scenarios (currently Prefork) accept it. Schedules
	// are pure functions, so a chaos run is exactly as deterministic
	// as a clean one.
	Faults fault.Schedule
}

// withDefaults returns cfg with every zero field resolved.
func (cfg Config) withDefaults() Config {
	if cfg.Scenario == "" {
		cfg.Scenario = Prefork
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = 1
	}
	if cfg.Requests == 0 {
		switch cfg.Scenario {
		case Pipeline:
			cfg.Requests = 64 * cfg.CPUs
		case Checkpoint:
			cfg.Requests = 32
		case ForkStorm:
			cfg.Requests = 4
		case SMPServer:
			cfg.Requests = 8
		case BuildFarm:
			cfg.Requests = 24 * cfg.CPUs
		case NetLB, KVShard:
			cfg.Requests = 64
		case Migrate:
			cfg.Requests = 4
		default:
			cfg.Requests = 256
		}
	}
	if cfg.Nodes == 0 {
		switch cfg.Scenario {
		case NetLB:
			cfg.Nodes = 2
		case KVShard:
			cfg.Nodes = 3
		case Migrate:
			cfg.Nodes = 2 // source and destination
		}
	}
	if cfg.Workers == 0 {
		if cfg.Scenario == ForkStorm {
			cfg.Workers = 64 * cfg.CPUs
		} else {
			cfg.Workers = 3
		}
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 64 << 20
	}
	if cfg.MutateBytes == 0 {
		cfg.MutateBytes = cfg.HeapBytes / 8
	}
	// Round up to whole pages: an explicit sub-page mutation must not
	// silently become "mutate nothing".
	cfg.MutateBytes = (cfg.MutateBytes + uint64(mem.PageSize) - 1) &^ (uint64(mem.PageSize) - 1)
	if cfg.RAMBytes == 0 {
		cfg.RAMBytes = 4 * cfg.HeapBytes
		if cfg.RAMBytes < 1<<30 {
			cfg.RAMBytes = 1 << 30
		}
	}
	return cfg
}

// Metrics is the deterministic result of one run. All quantities are
// virtual-time: two runs with the same Config produce identical
// Metrics, bit for bit.
type Metrics struct {
	Scenario  string `json:"scenario"`
	Strategy  string `json:"strategy"`
	HeapBytes uint64 `json:"heap_bytes"`
	RAMBytes  uint64 `json:"ram_bytes"`
	NumCPUs   int    `json:"num_cpus"`

	// Requests is completed units of user-visible work; Creations
	// is processes created (a pipeline request creates several).
	Requests  uint64 `json:"requests"`
	Creations uint64 `json:"creations"`

	// FailedRequests counts requests lost to injected faults (chaos
	// mode only — a clean run aborts on the first failure instead).
	// OOMKills counts workers the OOM killer reaped during the loop.
	FailedRequests uint64 `json:"failed_requests,omitempty"`
	OOMKills       uint64 `json:"oom_kills,omitempty"`

	// VirtualNanos is the virtual time the loop took; the *PerVSec
	// rates are per virtual second — the paper's throughput axis.
	VirtualNanos     uint64  `json:"virtual_ns"`
	RequestsPerVSec  float64 `json:"requests_per_vsec"`
	CreationsPerVSec float64 `json:"creations_per_vsec"`

	// PeakRSSBytes is the high-water mark of allocated physical
	// memory during the loop (huge frames counted at full size).
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`

	// Cost-meter event counters for the loop: PageCopies is the
	// COW-fault tax (plus eager-fork copies where selected), and
	// TLBShootdowns the remote-CPU IPIs — the SMP fork tax, always 0
	// on one CPU.
	PageFaults      uint64 `json:"page_faults"`
	PageCopies      uint64 `json:"page_copies"`
	PageZeroes      uint64 `json:"page_zeroes"`
	PTECopies       uint64 `json:"pte_copies"`
	TLBShootdowns   uint64 `json:"tlb_shootdowns"`
	ContextSwitches uint64 `json:"context_switches"`
	Syscalls        uint64 `json:"syscalls"`
	Instructions    uint64 `json:"instructions"`

	// CPUUtilization is, per CPU, the busy fraction of the virtual
	// time that CPU advanced during the loop (index = CPU id;
	// always in [0, 1]).
	CPUUtilization []float64 `json:"cpu_utilization"`

	// ServerCPUNanos is the virtual CPU time the resident server's
	// threads executed during the loop, summed across CPUs — the
	// service capacity left over after creation/snapshot taxes (set
	// by the SMPServer scenario; 0 elsewhere).
	ServerCPUNanos uint64 `json:"server_cpu_ns,omitempty"`

	// Wire counters, set by the distributed scenarios (netlb,
	// kvshard) and zero — and absent from the JSON — everywhere
	// else, so single-machine reports are byte-identical to runs of
	// a binary without networking. Packets/bytes are fabric totals
	// across every node; NetDrops counts frames the fault schedule
	// ate (send-side plus delivery-side); NetTimeouts is client
	// attempts that outlived their deadline and NetRetries the ones
	// re-sent (a timeout past the attempt budget fails the request
	// into FailedRequests instead).
	NetPacketsSent uint64 `json:"net_packets_sent,omitempty"`
	NetPacketsRecv uint64 `json:"net_packets_recv,omitempty"`
	NetBytesSent   uint64 `json:"net_bytes_sent,omitempty"`
	NetBytesRecv   uint64 `json:"net_bytes_recv,omitempty"`
	NetDrops       uint64 `json:"net_drops,omitempty"`
	NetTimeouts    uint64 `json:"net_timeouts,omitempty"`
	NetRetries     uint64 `json:"net_retries,omitempty"`

	// Live-migration counters, set only by the Migrate scenario (and
	// omitted from the JSON elsewhere). MigrateRounds is pre-copy
	// rounds shipped across all migrations (round 0 included),
	// MigratePagesSent the 4 KiB pages that crossed the wire,
	// MigrateDowntimeNanos the summed stop-and-copy outage — the
	// experiment's y-axis: Θ(dirty heap) for fork-family migrants,
	// ~flat for spawned ones — and MigrateRefused the migrants the
	// checkpoint refused to serialize (vfork borrowers).
	MigrateRounds        uint64 `json:"migrate_rounds,omitempty"`
	MigratePagesSent     uint64 `json:"migrate_pages_sent,omitempty"`
	MigrateDowntimeNanos uint64 `json:"migrate_downtime_ns,omitempty"`
	MigrateRefused       uint64 `json:"migrate_refused,omitempty"`

	// NetFlows is the fabric's flow log — per directed (src, dst,
	// label) flow — in (src, dst, label) order. The metrics plane
	// (`forkbench metrics`) renders each as a labelled counter.
	NetFlows []NetFlow `json:"net_flows,omitempty"`
}

// NetFlow is one directed flow's cumulative counters. Addresses are
// cell-local: 0 the client, then the balancer and backends (NetLB) or
// the shards (KVShard).
type NetFlow struct {
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Flow    string `json:"flow"`
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
	Drops   uint64 `json:"drops,omitempty"`
}

// Render formats the metrics as an aligned block for the CLI.
func (m *Metrics) Render() string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "  %-18s %s\n", k, v) }
	fmt.Fprintf(&b, "load %s via %s (heap %s, RAM %s, %d CPU(s))\n",
		m.Scenario, m.Strategy, HumanBytes(m.HeapBytes), HumanBytes(m.RAMBytes), m.NumCPUs)
	row("requests", fmt.Sprintf("%d (%.0f/virt-s)", m.Requests, m.RequestsPerVSec))
	if m.FailedRequests > 0 || m.OOMKills > 0 {
		row("failed", fmt.Sprintf("%d (injected faults; %d oom-killed)", m.FailedRequests, m.OOMKills))
	}
	row("creations", fmt.Sprintf("%d (%.0f/virt-s)", m.Creations, m.CreationsPerVSec))
	row("virtual time", fmt.Sprintf("%.3fms", float64(m.VirtualNanos)/1e6))
	row("peak RSS", HumanBytes(m.PeakRSSBytes))
	row("page faults", fmt.Sprint(m.PageFaults))
	row("page copies", fmt.Sprintf("%d (COW tax)", m.PageCopies))
	row("PTE copies", fmt.Sprint(m.PTECopies))
	row("TLB shootdowns", fmt.Sprintf("%d (SMP fork tax)", m.TLBShootdowns))
	row("ctx switches", fmt.Sprint(m.ContextSwitches))
	row("syscalls", fmt.Sprint(m.Syscalls))
	row("instructions", fmt.Sprint(m.Instructions))
	if m.MigrateRounds > 0 || m.MigrateRefused > 0 {
		row("migrations", fmt.Sprintf("%d (%d refused)", m.Requests, m.MigrateRefused))
		row("precopy rounds", fmt.Sprint(m.MigrateRounds))
		row("pages shipped", fmt.Sprintf("%d (%s)", m.MigratePagesSent,
			HumanBytes(m.MigratePagesSent*uint64(mem.PageSize))))
		row("downtime", fmt.Sprintf("%.3fms (stop-and-copy, summed)",
			float64(m.MigrateDowntimeNanos)/1e6))
	}
	if m.NetPacketsSent > 0 {
		row("net packets", fmt.Sprintf("%d sent / %d recv (%d dropped)",
			m.NetPacketsSent, m.NetPacketsRecv, m.NetDrops))
		row("net bytes", fmt.Sprintf("%s sent / %s recv",
			HumanBytes(m.NetBytesSent), HumanBytes(m.NetBytesRecv)))
		row("net timeouts", fmt.Sprintf("%d (%d retried)", m.NetTimeouts, m.NetRetries))
	}
	if len(m.CPUUtilization) > 0 {
		var u []string
		for _, f := range m.CPUUtilization {
			u = append(u, fmt.Sprintf("%.0f%%", 100*f))
		}
		row("cpu util", strings.Join(u, " "))
	}
	if m.ServerCPUNanos > 0 {
		row("server cpu", fmt.Sprintf("%.3fms", float64(m.ServerCPUNanos)/1e6))
	}
	return b.String()
}

// HumanBytes renders an exact power-of-two byte count with its
// largest unit (1GiB, 64MiB, 4KiB); other values render as raw bytes.
// Shared by the load and fleet CLI renderers.
func HumanBytes(n uint64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// Snapshot is one mid-run metric sample: the machine's live state at a
// driver sample point, on its own virtual clock. Deterministic — the
// same Config produces the same sequence of Snapshots.
type Snapshot struct {
	// VirtualNanos is the machine's virtual time at the sample
	// (since boot, warm-up included).
	VirtualNanos uint64
	// Requests/FailedRequests/Creations are the loop's running
	// totals at the sample.
	Requests       uint64
	FailedRequests uint64
	Creations      uint64
	// InFlight is how many requests the driver currently holds live.
	InFlight int
	// RSSBytes is the machine's current resident physical memory.
	RSSBytes uint64
}

// driver carries one run's state: the booted machine, the server heap
// VMA, and the counters accumulated by the scenario loop.
type driver struct {
	cfg       Config
	sys       *sim.System
	k         *kernel.Kernel
	heapStart uint64

	requests  uint64
	creations uint64
	failed    uint64
	peakPages uint64
	inflight  int

	// serverCPU is the virtual CPU time the SMPServer scenario's
	// server process executed during the loop.
	serverCPU uint64
}

// sample records the physical-memory high-water mark and feeds the
// mid-run sampling hook; scenarios call it at their peak-occupancy
// points (with driver.inflight set to the live request count).
func (d *driver) sample() {
	a := d.k.Phys().AllocatedPages()
	if a > d.peakPages {
		d.peakPages = a
	}
	if d.cfg.OnSample != nil {
		d.cfg.OnSample(Snapshot{
			VirtualNanos:   uint64(d.k.Elapsed()),
			Requests:       d.requests,
			FailedRequests: d.failed,
			Creations:      d.creations,
			InFlight:       d.inflight,
			RSSBytes:       a * uint64(mem.PageSize),
		})
	}
}

// DefaultWindow reports a scenario's steady-state in-flight request
// window at the given CPU count — the value Config.Window overrides
// (and the baseline sim/fleet's traffic surge multiplies). Zero for
// scenarios without a window knob.
func DefaultWindow(s Scenario, cpus int) int {
	if cpus < 1 {
		cpus = 1
	}
	switch s {
	case Prefork:
		return cpus
	case BuildFarm:
		return 2 * cpus
	case NetLB, KVShard:
		// The distributed client's in-flight window is a property of
		// the cell, not of any one machine's CPU count.
		return 4
	}
	return 0
}

// Prepared is a machine warmed for a measured run: the server's
// resident dirty heap is mapped and touched, and the resolved Config
// is pinned. The warm-up's virtual-time cost is the caller's to
// account; Run measures only the scenario loop.
type Prepared struct {
	cfg       Config
	sys       *sim.System
	heapStart uint64
	heapBytes uint64
}

// Prepare warms an existing machine for cfg's scenario — the step
// between boot and the measured loop. sim/fleet's rolling-restart
// driver calls it directly so a replacement instance's warm-up cost
// (heap dirtying, pool creation) can be measured separately from its
// serve phase.
func Prepare(sys *sim.System, cfg Config) (*Prepared, error) {
	cfg = cfg.withDefaults()

	// The server's resident, dirty heap — what fork must duplicate
	// page-table entries for on every creation.
	host := sys.Host()
	ps := uint64(mem.PageSize)
	if cfg.HugePages {
		ps = mem.HugeSize
	}
	heap := (cfg.HeapBytes + ps - 1) &^ (ps - 1)
	vma, err := host.Space().Map(0, heap, addrspace.Read|addrspace.Write, addrspace.MapOpts{
		Kind: addrspace.KindAnon, Name: "server-heap", Huge: cfg.HugePages,
	})
	if err != nil {
		return nil, fmt.Errorf("load: map heap: %w", err)
	}
	if err := host.Space().Touch(vma.Start, heap, addrspace.AccessWrite); err != nil {
		return nil, fmt.Errorf("load: dirty heap: %w", err)
	}
	return &Prepared{cfg: cfg, sys: sys, heapStart: vma.Start, heapBytes: heap}, nil
}

// System is the prepared machine — exposed so callers (tests, the E13
// host-cost experiment) can inspect the warmed state before Run.
func (p *Prepared) System() *sim.System { return p.sys }

// Run boots a fresh machine, warms it, and executes one scenario,
// reporting its metrics. Counters are zeroed after the warm-up, so
// boot and heap-dirtying cost is excluded from the measured loop.
func Run(cfg Config) (*Metrics, error) {
	cfg = cfg.withDefaults()
	if cfg.Scenario.Distributed() {
		return runNetCell(cfg, nil)
	}
	if cfg.Scenario == Migrate {
		// Also a network cell: cfg.Faults is the wire's schedule.
		return runMigrateCell(cfg)
	}
	if cfg.Faults != nil && cfg.Scenario != Prefork {
		return nil, fmt.Errorf("load: scenario %s does not support fault injection (only prefork and the distributed scenarios are failure-tolerant)", cfg.Scenario)
	}
	sys, err := sim.NewSystem(
		sim.WithRAM(cfg.RAMBytes),
		sim.WithCPUs(cfg.CPUs),
		sim.WithUserland("true", "echo", "cat", "hog", "smpspin"),
	)
	if err != nil {
		return nil, err
	}
	p, err := Prepare(sys, cfg)
	if err != nil {
		return nil, err
	}
	// Chaos arms only now: warm-up (boot, heap dirtying) stays clean,
	// the measured loop runs under the schedule.
	if cfg.Faults != nil {
		sys.SetFaultSchedule(cfg.Faults)
	}
	return p.Run()
}

// Run executes the prepared scenario once, measuring from the current
// virtual instant: counters are zeroed, the loop runs, and the
// metrics are assembled. Call it once per Prepare.
func (p *Prepared) Run() (*Metrics, error) {
	cfg := p.cfg
	d := &driver{cfg: cfg, sys: p.sys, k: p.sys.Kernel(), heapStart: p.heapStart}
	heap := p.heapBytes

	meter := d.k.Meter()
	meter.ResetCounters()
	cswBase := d.k.ContextSwitches()
	oomBase := d.k.OOMKills
	busyBase := make([]uint64, cfg.CPUs)
	clockBase := make([]uint64, cfg.CPUs)
	for _, cs := range d.k.CPUStates() {
		busyBase[cs.CPU] = uint64(cs.Busy)
		clockBase[cs.CPU] = uint64(cs.Clock)
	}
	t0 := d.k.Elapsed()
	d.sample()

	var err error
	switch cfg.Scenario {
	case Prefork:
		err = d.prefork()
	case Pipeline:
		err = d.pipeline()
	case Checkpoint:
		err = d.checkpoint()
	case ForkStorm:
		err = d.forkstorm()
	case SMPServer:
		err = d.smpserver()
	case BuildFarm:
		err = d.buildfarm()
	default:
		err = fmt.Errorf("load: unknown scenario %q", cfg.Scenario)
	}
	if err != nil {
		return nil, fmt.Errorf("load: %s via %v: %w", cfg.Scenario, cfg.Via, err)
	}

	elapsed := uint64(d.k.Elapsed() - t0)
	m := &Metrics{
		Scenario:  string(cfg.Scenario),
		Strategy:  cfg.Via.String(),
		HeapBytes: heap,
		RAMBytes:  cfg.RAMBytes,
		NumCPUs:   cfg.CPUs,
		Requests:  d.requests,
		Creations: d.creations,

		FailedRequests: d.failed,
		OOMKills:       uint64(d.k.OOMKills - oomBase),

		VirtualNanos: elapsed,
		PeakRSSBytes: d.peakPages * uint64(mem.PageSize),

		PageFaults:      meter.PageFaults,
		PageCopies:      meter.PageCopies,
		PageZeroes:      meter.PageZeroes,
		PTECopies:       meter.PTECopies,
		TLBShootdowns:   meter.TLBShootdowns,
		ContextSwitches: d.k.ContextSwitches() - cswBase,
		Syscalls:        meter.Syscalls,
		Instructions:    meter.Instructions,

		CPUUtilization: make([]float64, cfg.CPUs),
		ServerCPUNanos: d.serverCPU,
	}
	if elapsed > 0 {
		m.RequestsPerVSec = float64(m.Requests) * 1e9 / float64(elapsed)
		m.CreationsPerVSec = float64(m.Creations) * 1e9 / float64(elapsed)
	}
	for _, cs := range d.k.CPUStates() {
		if advanced := uint64(cs.Clock) - clockBase[cs.CPU]; advanced > 0 {
			m.CPUUtilization[cs.CPU] = float64(uint64(cs.Busy)-busyBase[cs.CPU]) / float64(advanced)
		}
	}
	return m, nil
}
