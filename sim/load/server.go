package load

import (
	"fmt"
	"strconv"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/sim"
)

// Server is a persistent prefork-style request server on its own
// machine: boot it once, then serve traffic in batches interleaved
// with an external control loop. sim/cluster runs one Server per
// cluster machine — NewServer is the machine's warm-up (boot, dirty
// heap, pre-created worker pool, all on the machine's virtual clock,
// so fork's Θ(heap) pool tax is in the measured scale-out latency),
// ServeBatch is one reconcile step's worth of traffic, and Drain is
// scale-down (the leak invariant checks its books).
//
// A Server is single-goroutine: the caller serializes ServeBatch /
// Sample / Drain. Distinct Servers are independent machines and may
// run host-parallel.
type Server struct {
	cfg     Config
	workers int
	sys     *sim.System
	k       *kernel.Kernel
	pool    []*sim.Process

	// tpl is the template this server was stamped from (nil when
	// cold-booted); Drain recycles the machine's allocations back
	// into it once the books are closed.
	tpl *sim.Template

	warmNanos uint64
	warmPTEs  uint64

	// Post-warm-up resource baselines: what Drain must get back to.
	baseProcs          int
	basePages, baseCmt uint64

	requests, failed, creations uint64
	peakPages                   uint64
	drained                     bool
}

// Batch is one ServeBatch's outcome.
type Batch struct {
	// Served and Failed count requests completed and lost in this
	// batch (failures are tolerated, as in chaos mode).
	Served, Failed int
	// Creations is worker processes created for this batch.
	Creations uint64
	// Nanos is the virtual time the batch consumed on the machine's
	// clock.
	Nanos uint64
}

// DrainStats is the scale-down bookkeeping: resource counters at the
// post-warm-up baseline and after the pool teardown. A leak-free
// strategy returns every End counter to its Base.
type DrainStats struct {
	BaseProcs, EndProcs   int
	BasePages, EndPages   uint64
	BaseCommit, EndCommit uint64
}

// NewServer boots a machine and warms it to ready-to-serve: map and
// dirty the server heap, then pre-create the parked worker pool
// through cfg.Via. cfg.Workers sizes the pool (default 4×CPUs — a
// server keeps spare workers beyond its steady-state window);
// cfg.Scenario must be empty or Prefork. The warm-up runs on the
// machine's virtual clock; WarmupNanos reports it.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Scenario != "" && cfg.Scenario != Prefork {
		return nil, fmt.Errorf("load: Server serves prefork traffic only, not %q", cfg.Scenario)
	}
	cfg.Scenario = Prefork
	rawWorkers := cfg.Workers
	cfg = cfg.withDefaults()
	workers := rawWorkers
	if workers <= 0 {
		workers = 4 * cfg.CPUs
	}
	sys, err := sim.NewSystem(
		sim.WithRAM(cfg.RAMBytes),
		sim.WithCPUs(cfg.CPUs),
		sim.WithUserland("true", "hog"),
	)
	if err != nil {
		return nil, err
	}
	k := sys.Kernel()

	t0 := k.Elapsed()
	pteBase := k.Meter().PTECopies
	if _, err := Prepare(sys, cfg); err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg, workers: workers, sys: sys, k: k,
		baseProcs: k.ProcessCount(),
		basePages: k.Phys().AllocatedPages(),
		baseCmt:   k.Phys().Committed(),
	}
	for i := 0; i < workers; i++ {
		p, err := sys.Command("true").Via(cfg.Via).Create()
		if err != nil {
			s.teardown()
			return nil, fmt.Errorf("load: warm pool worker %d via %v: %w", i, cfg.Via, err)
		}
		s.pool = append(s.pool, p)
	}
	s.warmNanos = uint64(k.Elapsed() - t0)
	s.warmPTEs = k.Meter().PTECopies - pteBase
	s.observe(0)
	return s, nil
}

// request builds one request's worker command: with RequestWorkMiB
// set the worker is a hog that allocates and write-touches its own
// working set, otherwise it is a trivial exit.
func (s *Server) request() *sim.Cmd {
	if s.cfg.RequestWorkMiB > 0 {
		return s.sys.Command("hog", strconv.Itoa(s.cfg.RequestWorkMiB)).Via(s.cfg.Via)
	}
	return s.sys.Command("true").Via(s.cfg.Via)
}

// ServeBatch serves up to n requests in the scenario's closed loop
// (Window in flight, each request a fresh worker via cfg.Via). When
// budgetNanos > 0 the server stops launching new requests once the
// batch has consumed that much virtual time — leftover requests are
// the caller's backlog — but always drains what is in flight, so the
// returned Nanos may overshoot the budget by up to one request.
// Failures (creation refused, worker lost) are tolerated and counted.
func (s *Server) ServeBatch(n int, budgetNanos uint64) (Batch, error) {
	if s.drained {
		return Batch{}, fmt.Errorf("load: ServeBatch on a drained server")
	}
	window := s.cfg.Window
	if window < 1 {
		window = DefaultWindow(Prefork, s.cfg.CPUs)
	}
	t0 := s.k.Elapsed()
	var b Batch
	var inflight []*sim.Cmd
	launched := 0
	overBudget := func() bool {
		return budgetNanos > 0 && uint64(s.k.Elapsed()-t0) >= budgetNanos
	}
	for launched < n || len(inflight) > 0 {
		for len(inflight) < window && launched < n && !overBudget() {
			cmd := s.request()
			launched++
			if err := cmd.Start(); err != nil {
				b.Failed++ // creation refused: the request is lost
				continue
			}
			b.Creations++
			inflight = append(inflight, cmd)
		}
		if len(inflight) == 0 {
			if overBudget() || launched >= n {
				break
			}
			continue // every launch in this window failed
		}
		s.observe(len(inflight))
		cmd := inflight[0]
		inflight = inflight[1:]
		if err := cmd.Wait(); err != nil {
			b.Failed++ // worker died mid-request
		} else {
			b.Served++
		}
	}
	s.requests += uint64(b.Served)
	s.failed += uint64(b.Failed)
	s.creations += b.Creations
	b.Nanos = uint64(s.k.Elapsed() - t0)
	s.observe(0)
	return b, nil
}

// observe updates the RSS high-water mark and fires the mid-run
// sampling hook with the server's running totals.
func (s *Server) observe(inflight int) {
	a := s.k.Phys().AllocatedPages()
	if a > s.peakPages {
		s.peakPages = a
	}
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(Snapshot{
			VirtualNanos:   uint64(s.k.Elapsed()),
			Requests:       s.requests,
			FailedRequests: s.failed,
			Creations:      s.creations,
			InFlight:       inflight,
			RSSBytes:       a * uint64(mem.PageSize),
		})
	}
}

// Sample reports the machine's live state: cumulative request totals
// and current resident memory, on its own virtual clock.
func (s *Server) Sample() Snapshot {
	return Snapshot{
		VirtualNanos:   uint64(s.k.Elapsed()),
		Requests:       s.requests,
		FailedRequests: s.failed,
		Creations:      s.creations,
		RSSBytes:       s.k.Phys().AllocatedPages() * uint64(mem.PageSize),
	}
}

// WarmupNanos is the virtual time from boot to ready-to-serve: heap
// dirtying plus pool creation — the scale-out latency sim/cluster
// charges a new machine.
func (s *Server) WarmupNanos() uint64 { return s.warmNanos }

// WarmupPTECopies is the warm-up's page-table bill: under fork each
// pool worker duplicates the freshly dirtied heap's page tables.
func (s *Server) WarmupPTECopies() uint64 { return s.warmPTEs }

// PeakRSSBytes is the resident-memory high-water mark observed so far.
func (s *Server) PeakRSSBytes() uint64 { return s.peakPages * uint64(mem.PageSize) }

// Elapsed is the machine's virtual clock (nanoseconds since boot).
func (s *Server) Elapsed() uint64 { return uint64(s.k.Elapsed()) }

// Drain tears down the worker pool — scale-down — and reports the
// resource books: a leak-free strategy returns process, frame, and
// commit counts to the post-warm-up baseline. The server cannot serve
// after Drain; calling it twice is an error.
func (s *Server) Drain() (DrainStats, error) {
	if s.drained {
		return DrainStats{}, fmt.Errorf("load: Drain on a drained server")
	}
	s.teardown()
	stats := DrainStats{
		BaseProcs: s.baseProcs, EndProcs: s.k.ProcessCount(),
		BasePages: s.basePages, EndPages: s.k.Phys().AllocatedPages(),
		BaseCommit: s.baseCmt, EndCommit: s.k.Phys().Committed(),
	}
	if s.tpl != nil {
		// Books are closed; recycle the machine's allocations into
		// the template's next stamp. Nil the handles so a late
		// Sample/ServeBatch fails loudly instead of reading whatever
		// machine is stamped into the recycled shell next.
		s.tpl.Release(s.sys)
		s.sys, s.k = nil, nil
	}
	return stats, nil
}

func (s *Server) teardown() {
	for _, p := range s.pool {
		p.Destroy()
	}
	s.pool = nil
	s.drained = true
}
