package load_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/sim"
	"repro/sim/load"
)

// TestScenariosDeterministic is the repository's determinism
// regression: every scenario, run twice from identical configs on
// fresh machines, must produce byte-identical metrics — tick counts,
// fault counts, context switches, everything. A mismatch means
// something in the kernel (typically map iteration) leaked host
// nondeterminism into the simulation.
func TestScenariosDeterministic(t *testing.T) {
	cases := []load.Config{
		{Scenario: load.Prefork, Via: sim.ForkExec, Requests: 12, HeapBytes: 8 << 20},
		{Scenario: load.Prefork, Via: sim.Spawn, Requests: 12, HeapBytes: 8 << 20},
		{Scenario: load.Pipeline, Via: sim.Builder, Requests: 4, Workers: 3, HeapBytes: 4 << 20},
		{Scenario: load.Checkpoint, Via: sim.ForkExec, Requests: 4, HeapBytes: 8 << 20},
		{Scenario: load.Checkpoint, Via: sim.EagerForkExec, Requests: 2, HeapBytes: 4 << 20},
		{Scenario: load.ForkStorm, Via: sim.VforkExec, Requests: 2, Workers: 24, HeapBytes: 4 << 20},
		{Scenario: load.Prefork, Via: sim.ForkExec, Requests: 6, HeapBytes: 8 << 20, HugePages: true},
	}
	for _, cfg := range cases {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-%v", cfg.Scenario, cfg.Via), func(t *testing.T) {
			a, err := load.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := load.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if *a != *b {
				aj, _ := json.MarshalIndent(a, "", "  ")
				bj, _ := json.MarshalIndent(b, "", "  ")
				t.Errorf("two identical runs diverged:\nfirst:  %s\nsecond: %s", aj, bj)
			}
		})
	}
}
