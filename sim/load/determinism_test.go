package load_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/sim"
	"repro/sim/load"
)

// TestScenariosDeterministic is the repository's determinism
// regression: every scenario, run twice from identical configs on
// fresh machines, must produce byte-identical metrics — tick counts,
// fault counts, context switches, shootdowns, everything — at every
// CPU count. A mismatch means something in the kernel (typically map
// iteration, or a host-dependent scheduling choice on the SMP path)
// leaked host nondeterminism into the simulation.
func TestScenariosDeterministic(t *testing.T) {
	cases := []load.Config{
		{Scenario: load.Prefork, Via: sim.ForkExec, Requests: 12, HeapBytes: 8 << 20},
		{Scenario: load.Prefork, Via: sim.Spawn, Requests: 12, HeapBytes: 8 << 20},
		{Scenario: load.Pipeline, Via: sim.Builder, Requests: 4, Workers: 3, HeapBytes: 4 << 20},
		{Scenario: load.Checkpoint, Via: sim.ForkExec, Requests: 4, HeapBytes: 8 << 20},
		{Scenario: load.Checkpoint, Via: sim.EagerForkExec, Requests: 2, HeapBytes: 4 << 20},
		{Scenario: load.ForkStorm, Via: sim.VforkExec, Requests: 2, Workers: 24, HeapBytes: 4 << 20},
		{Scenario: load.Prefork, Via: sim.ForkExec, Requests: 6, HeapBytes: 8 << 20, HugePages: true},
		// The SMP matrix: the same scenarios must stay deterministic
		// when CPUs overlap in virtual time.
		{Scenario: load.Prefork, Via: sim.ForkExec, Requests: 12, HeapBytes: 8 << 20, CPUs: 2},
		{Scenario: load.Prefork, Via: sim.Spawn, Requests: 12, HeapBytes: 8 << 20, CPUs: 8},
		{Scenario: load.ForkStorm, Via: sim.Spawn, Requests: 2, Workers: 24, HeapBytes: 4 << 20, CPUs: 4},
		{Scenario: load.SMPServer, Via: sim.ForkExec, Requests: 3, HeapBytes: 8 << 20, CPUs: 4},
		{Scenario: load.SMPServer, Via: sim.Spawn, Requests: 2, HeapBytes: 4 << 20, CPUs: 2},
		{Scenario: load.BuildFarm, Via: sim.Spawn, Requests: 8, HeapBytes: 4 << 20, CPUs: 4},
		{Scenario: load.BuildFarm, Via: sim.ForkExec, Requests: 6, HeapBytes: 4 << 20, CPUs: 2},
		// Live migration: two machines and the wire between them must
		// replay bit-for-bit too, refusals included.
		{Scenario: load.Migrate, Via: sim.ForkExec, Requests: 2, HeapBytes: 8 << 20},
		{Scenario: load.Migrate, Via: sim.Spawn, Requests: 2, HeapBytes: 8 << 20},
		{Scenario: load.Migrate, Via: sim.VforkExec, Requests: 2, HeapBytes: 4 << 20},
	}
	for _, cfg := range cases {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-%v-%dcpu", cfg.Scenario, cfg.Via, cfg.CPUs), func(t *testing.T) {
			a, err := load.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := load.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				aj, _ := json.MarshalIndent(a, "", "  ")
				bj, _ := json.MarshalIndent(b, "", "  ")
				t.Errorf("two identical runs diverged:\nfirst:  %s\nsecond: %s", aj, bj)
			}
		})
	}
}
