package load

import (
	"container/heap"
	"fmt"

	"repro/internal/cost"
	simnet "repro/sim/net"
)

// Distributed scenarios: multi-machine topologies wired over the
// sim/net fabric. One run is one "cell" — a self-contained,
// single-threaded discrete-event simulation merging packet arrivals
// and client timers in (virtual time, address, seq) order — so a cell
// replays bit-for-bit at any GOMAXPROCS, and host parallelism applies
// across cells (the fleet's machine axis), never within one.
//
// NetLB is an L7 load balancer fronting a pool of prefork-style
// backends: a closed-loop client keeps Window requests in flight
// through the balancer, each served by a real load.Server machine
// (fork- or spawn-created workers, per Config.Via). Midway through
// the run one backend restarts and is unavailable while it re-pays
// its warm-up — heap dirtying plus pool creation, so under fork the
// outage is Θ(heap) longer than under spawn — and the client's
// timeout/retry counters measure the resulting retry storm
// (experiments.NetClaim, E15).
//
// KVShard is a shard-per-machine KV service: the client hashes each
// get to its shard and retries on timeout, so fault schedules on the
// wire (fault.NetChaos drops, fault.NetSplit partitions) convert
// into retries and, past the attempt budget, failed requests.

// Cell wiring constants: the client's timeout/retry policy and the
// priced (not stored) message sizes.
const (
	// netTimeout is the client's per-attempt response deadline. It
	// sits between a spawn pool's re-warm time (~30ms) and a fork
	// pool's (~46ms) at the default 64 MiB heap, which is what makes
	// the NetLB backend restart legible in the timeout counters: a
	// request queued behind a spawn re-warm still answers in time, one
	// behind a fork re-warm times out and retries (E15).
	netTimeout = 35 * cost.Millisecond
	// netMaxAttempts bounds the retry loop; a request still
	// unanswered after this many attempts is failed.
	netMaxAttempts = 3

	netReqBytes  = 512  // client -> LB request
	netFwdBytes  = 512  // LB -> backend forward
	netRespBytes = 2048 // backend -> client response (direct return)
	netGetBytes  = 128  // client -> shard get
	netValBytes  = 1024 // shard -> client value
)

// Distributed reports whether s is a multi-machine scenario run as a
// network cell (fault schedules apply to the wire, not the machines).
func (s Scenario) Distributed() bool { return s == NetLB || s == KVShard }

// netTimer is one pending client timeout: attempt att of request req
// expires at time at unless a response resolves it first.
type netTimer struct {
	at  cost.Ticks
	req int
	att int
	seq uint64 // arming order, the deterministic tie-break
}

type netTimerHeap []netTimer

func (h netTimerHeap) Len() int { return len(h) }
func (h netTimerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h netTimerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *netTimerHeap) Push(x any)   { *h = append(*h, x.(netTimer)) }
func (h *netTimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// netReq is one request's client-side state.
type netReq struct {
	attempts int
	resolved bool
}

// netCell is one distributed run: the fabric, the backing Server
// machines, and the client/balancer state the event loop advances.
// Addresses: 0 is the client; NetLB puts the balancer at 1 and
// backends at 2..; KVShard puts shards at 1..
type netCell struct {
	cfg     Config
	fab     *simnet.Fabric
	servers []*Server    // one per backend/shard, indexed by addr-first
	avail   []cost.Ticks // per server: busy-until on the cell timeline
	first   int          // address of servers[0]

	timers netTimerHeap
	tseq   uint64

	reqs     []netReq
	nextReq  int
	inWindow int
	window   int

	served, failedReqs uint64
	timeouts, retries  uint64
	creations          uint64
	completed          []uint64 // per server: requests completed
	restartAfter       uint64   // NetLB: backend 0 restarts after this many
	restarted          bool
	lastDone           cost.Ticks // resolution time of the last request
	err                error
}

const netClientAddr = 0
const netLBAddr = 1

// runNetCell executes one distributed scenario. Backends are stamped
// from st when non-nil (the fleet's warm-template path) and
// cold-booted otherwise; both produce byte-identical Metrics.
func runNetCell(cfg Config, st *ServerTemplates) (*Metrics, error) {
	cfg = cfg.withDefaults()
	n := cfg.Nodes

	c := &netCell{
		cfg:       cfg,
		avail:     make([]cost.Ticks, n),
		completed: make([]uint64, n),
		reqs:      make([]netReq, cfg.Requests),
		window:    cfg.Window,
	}
	if c.window < 1 {
		c.window = DefaultWindow(cfg.Scenario, cfg.CPUs)
	}
	switch cfg.Scenario {
	case NetLB:
		c.first = netLBAddr + 1
		c.restartAfter = uint64(cfg.Requests / (3 * n))
		if c.restartAfter < 1 {
			c.restartAfter = 1
		}
	case KVShard:
		c.first = netClientAddr + 1
	default:
		return nil, fmt.Errorf("load: %s is not a distributed scenario", cfg.Scenario)
	}

	// The backing machines. Their own fault injectors stay clean —
	// cfg.Faults is the wire's schedule, installed on the fabric.
	bcfg := cfg
	bcfg.Scenario = Prefork
	bcfg.Faults = nil
	bcfg.OnSample = nil
	for i := 0; i < n; i++ {
		s, err := st.Server(bcfg)
		if err != nil {
			return nil, fmt.Errorf("load: %s backend %d: %w", cfg.Scenario, i, err)
		}
		c.servers = append(c.servers, s)
	}
	defer func() {
		for _, s := range c.servers {
			if !s.drained {
				s.Drain()
			}
		}
	}()

	var opts []simnet.Option
	if cfg.Faults != nil {
		opts = append(opts, simnet.WithFaults(cfg.Faults))
	}
	fab, err := simnet.New(c.first+n, cost.DefaultModel(), opts...)
	if err != nil {
		return nil, err
	}
	c.fab = fab

	// Measure from here: the loop's counters exclude warm-up, like
	// every other scenario.
	cswBase := make([]uint64, n)
	for i, s := range c.servers {
		s.k.Meter().ResetCounters()
		cswBase[i] = s.k.ContextSwitches()
	}

	// Seed the closed loop and run the merged event queue dry:
	// earliest of (next packet arrival, next timer), packets first on
	// ties — a response beats its own deadline.
	c.launch(0)
	for c.err == nil {
		ta, okA := fab.NextArrival()
		var tt cost.Ticks
		okT := len(c.timers) > 0
		if okT {
			tt = c.timers[0].at
		}
		if !okA && !okT {
			break
		}
		if okA && (!okT || ta <= tt) {
			if p, ok := fab.DeliverNext(); ok {
				c.handle(p)
			}
			continue
		}
		c.fire(heap.Pop(&c.timers).(netTimer))
	}
	if c.err != nil {
		return nil, fmt.Errorf("load: %s via %v: %w", cfg.Scenario, cfg.Via, c.err)
	}

	elapsed := uint64(c.lastDone)
	m := &Metrics{
		Scenario:  string(cfg.Scenario),
		Strategy:  cfg.Via.String(),
		HeapBytes: c.servers[0].cfg.HeapBytes,
		RAMBytes:  cfg.RAMBytes,
		NumCPUs:   cfg.CPUs,

		Requests:       c.served,
		Creations:      c.creations,
		FailedRequests: c.failedReqs,

		VirtualNanos: elapsed,

		NetTimeouts: c.timeouts,
		NetRetries:  c.retries,
	}
	tot := fab.Totals()
	m.NetPacketsSent = tot.PacketsSent
	m.NetPacketsRecv = tot.PacketsRecv
	m.NetBytesSent = tot.BytesSent
	m.NetBytesRecv = tot.BytesRecv
	m.NetDrops = tot.DropsSend + tot.DropsRecv
	for _, fl := range fab.Flows() {
		m.NetFlows = append(m.NetFlows, NetFlow{
			Src: fl.Src, Dst: fl.Dst, Flow: fl.Flow,
			Packets: fl.Packets, Bytes: fl.Bytes, Drops: fl.Drops,
		})
	}
	for i, s := range c.servers {
		meter := s.k.Meter()
		m.PageFaults += meter.PageFaults
		m.PageCopies += meter.PageCopies
		m.PageZeroes += meter.PageZeroes
		m.PTECopies += meter.PTECopies
		m.TLBShootdowns += meter.TLBShootdowns
		m.Syscalls += meter.Syscalls
		m.Instructions += meter.Instructions
		m.ContextSwitches += s.k.ContextSwitches() - cswBase[i]
		if rss := s.PeakRSSBytes(); rss > m.PeakRSSBytes {
			m.PeakRSSBytes = rss
		}
	}
	if elapsed > 0 {
		m.RequestsPerVSec = float64(m.Requests) * 1e9 / float64(elapsed)
		m.CreationsPerVSec = float64(m.Creations) * 1e9 / float64(elapsed)
	}
	return m, nil
}

// launch tops the client's in-flight window up at time now.
func (c *netCell) launch(now cost.Ticks) {
	for c.inWindow < c.window && c.nextReq < len(c.reqs) {
		c.attempt(c.nextReq, now)
		c.inWindow++
		c.nextReq++
	}
}

// attempt sends one try of request req at time now and arms its
// timeout. A send-side drop still arms the timer — the client cannot
// see the wire eat its packet.
func (c *netCell) attempt(req int, now cost.Ticks) {
	att := c.reqs[req].attempts
	c.reqs[req].attempts++
	tag := uint64(req)<<8 | uint64(att)
	switch c.cfg.Scenario {
	case NetLB:
		c.fab.Send(netClientAddr, netLBAddr, "req", tag, netReqBytes, now)
	case KVShard:
		c.fab.Send(netClientAddr, c.first+req%len(c.servers), "get", tag, netGetBytes, now)
	}
	c.tseq++
	heap.Push(&c.timers, netTimer{at: now + netTimeout, req: req, att: att, seq: c.tseq})
}

// handle routes one delivered packet.
func (c *netCell) handle(p simnet.Packet) {
	req := int(p.Tag >> 8)
	att := int(p.Tag & 0xff)
	switch {
	case p.Dst == netClientAddr:
		// A response. Late ones (the request already timed out or a
		// prior attempt answered) are ignored.
		if !c.reqs[req].resolved {
			c.resolve(req, p.Arrival, true)
		}
	case c.cfg.Scenario == NetLB && p.Dst == netLBAddr:
		// Balancer: forward to a backend. Retries rotate so a retry
		// never re-queues behind the backend that timed it out.
		b := (req + att) % len(c.servers)
		c.fab.Send(netLBAddr, c.first+b, "fwd", p.Tag, netFwdBytes, p.Arrival)
	default:
		// A backend/shard serves the request on its own machine and
		// returns the response directly to the client. Served even if
		// the client has moved on — wasted work is the retry storm's
		// cost, and it keeps the backend clock honest.
		i := p.Dst - c.first
		flow := "resp"
		bytes := uint64(netRespBytes)
		if c.cfg.Scenario == KVShard {
			flow, bytes = "val", netValBytes
		}
		done := c.serve(i, p.Arrival)
		c.fab.Send(p.Dst, netClientAddr, flow, p.Tag, bytes, done)
	}
}

// serve runs one request on server i, arriving on the cell timeline
// at arrival, and returns its completion time. The service duration
// is measured on the machine's own virtual clock (a real ServeBatch);
// queueing behind earlier requests and behind a NetLB restart's
// re-warm window happens on the cell timeline via avail.
func (c *netCell) serve(i int, arrival cost.Ticks) cost.Ticks {
	start := arrival
	if c.avail[i] > start {
		start = c.avail[i]
	}
	b, err := c.servers[i].ServeBatch(1, 0)
	if err != nil {
		c.err = err
		return start
	}
	c.creations += b.Creations
	done := start + cost.Ticks(b.Nanos)
	c.avail[i] = done
	c.completed[i]++
	// The E15 event: one NetLB backend restarts mid-run and re-pays
	// its measured warm-up (heap dirtying + pool creation) before it
	// can serve again — Θ(heap) longer under fork than under spawn.
	if c.cfg.Scenario == NetLB && i == 0 && !c.restarted && c.completed[i] >= c.restartAfter {
		c.restarted = true
		c.avail[i] = done + cost.Ticks(c.servers[i].WarmupNanos())
	}
	return done
}

// fire handles one expired timeout: if the attempt it guards is still
// the latest and unanswered, the request times out and retries (or
// fails past the attempt budget).
func (c *netCell) fire(t netTimer) {
	r := &c.reqs[t.req]
	if r.resolved || r.attempts != t.att+1 {
		return
	}
	c.timeouts++
	if r.attempts < netMaxAttempts {
		c.retries++
		c.attempt(t.req, t.at)
		return
	}
	c.resolve(t.req, t.at, false)
}

// resolve finishes request req at time at and refills the window.
func (c *netCell) resolve(req int, at cost.Ticks, ok bool) {
	c.reqs[req].resolved = true
	c.inWindow--
	if ok {
		c.served++
	} else {
		c.failedReqs++
	}
	if at > c.lastDone {
		c.lastDone = at
	}
	c.launch(at)
}
