package load

import (
	"testing"

	"repro/sim"
	"repro/sim/fault"
)

// runMigrate executes one Migrate cell, failing the test on error.
func runMigrate(t *testing.T, cfg Config) *Metrics {
	t.Helper()
	cfg.Scenario = Migrate
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMigrateForkVsSpawn is E16's mechanism at unit scale: a
// fork-family migrant drags the parent's dirty heap through every
// pre-copy round and into the stop-and-copy residue, a spawned one
// carries only its own image.
func TestMigrateForkVsSpawn(t *testing.T) {
	const reqs = 2
	fork := runMigrate(t, Config{Via: sim.ForkExec, Requests: reqs, HeapBytes: 8 << 20})
	spawn := runMigrate(t, Config{Via: sim.Spawn, Requests: reqs, HeapBytes: 8 << 20})

	for _, m := range []*Metrics{fork, spawn} {
		if m.Requests != reqs {
			t.Fatalf("%s: %d migrations completed, want %d", m.Strategy, m.Requests, reqs)
		}
		if m.MigrateRefused != 0 {
			t.Errorf("%s: %d refusals, want 0", m.Strategy, m.MigrateRefused)
		}
		if m.MigrateDowntimeNanos == 0 {
			t.Errorf("%s: zero downtime; stop-and-copy cannot be free", m.Strategy)
		}
		if m.NetPacketsSent == 0 || m.NetBytesSent == 0 {
			t.Errorf("%s: page stream never touched the wire", m.Strategy)
		}
	}
	// The fork migrant inherits the 8 MiB heap: it re-ships dirty
	// pages every round (Workers=3 ⇒ 3 rounds per migration), while
	// the spawned migrant converges after round 0.
	if want := uint64(3 * reqs); fork.MigrateRounds != want {
		t.Errorf("fork rounds = %d, want %d", fork.MigrateRounds, want)
	}
	if want := uint64(1 * reqs); spawn.MigrateRounds != want {
		t.Errorf("spawn rounds = %d, want %d (converged after the full round)", spawn.MigrateRounds, want)
	}
	if fork.MigratePagesSent < 4*spawn.MigratePagesSent {
		t.Errorf("fork shipped %d pages, spawn %d; the inherited heap should dominate",
			fork.MigratePagesSent, spawn.MigratePagesSent)
	}
	if fork.MigrateDowntimeNanos < 4*spawn.MigrateDowntimeNanos {
		t.Errorf("fork downtime = %dns, spawn = %dns; want the Θ(dirty heap) gap",
			fork.MigrateDowntimeNanos, spawn.MigrateDowntimeNanos)
	}
}

// TestMigrateDowntimeScalesWithHeap: doubling the parent heap doubles
// (to first order) a fork migrant's residue and downtime, and leaves a
// spawned migrant's downtime bit-identical — the process never
// inherited the heap, so its migration cannot see it.
func TestMigrateDowntimeScalesWithHeap(t *testing.T) {
	run := func(via sim.Strategy, heap uint64) *Metrics {
		return runMigrate(t, Config{Via: via, Requests: 1, HeapBytes: heap})
	}
	forkSmall, forkBig := run(sim.ForkExec, 4<<20), run(sim.ForkExec, 16<<20)
	if forkBig.MigrateDowntimeNanos <= forkSmall.MigrateDowntimeNanos {
		t.Errorf("fork downtime did not grow with heap: %dns @4MiB vs %dns @16MiB",
			forkSmall.MigrateDowntimeNanos, forkBig.MigrateDowntimeNanos)
	}
	if forkBig.MigratePagesSent <= forkSmall.MigratePagesSent {
		t.Errorf("fork pages shipped did not grow with heap: %d vs %d",
			forkSmall.MigratePagesSent, forkBig.MigratePagesSent)
	}
	spawnSmall, spawnBig := run(sim.Spawn, 4<<20), run(sim.Spawn, 16<<20)
	if spawnSmall.MigrateDowntimeNanos != spawnBig.MigrateDowntimeNanos {
		t.Errorf("spawn downtime moved with a heap it never inherited: %dns @4MiB vs %dns @16MiB",
			spawnSmall.MigrateDowntimeNanos, spawnBig.MigrateDowntimeNanos)
	}
	if spawnSmall.MigratePagesSent != spawnBig.MigratePagesSent {
		t.Errorf("spawn pages shipped moved with the parent heap: %d vs %d",
			spawnSmall.MigratePagesSent, spawnBig.MigratePagesSent)
	}
}

// TestMigrateAllStrategies: every creation strategy either migrates or
// refuses cleanly, and the fork family ships strictly more state than
// the self-contained strategies.
func TestMigrateAllStrategies(t *testing.T) {
	forkFamily := map[sim.Strategy]bool{
		sim.ForkExec: true, sim.EmulatedFork: true, sim.EagerForkExec: true,
	}
	spawnPages := uint64(0)
	for _, via := range []sim.Strategy{
		sim.Spawn, sim.ForkExec, sim.VforkExec, sim.Builder,
		sim.EmulatedFork, sim.EagerForkExec,
	} {
		m := runMigrate(t, Config{Via: via, Requests: 1, HeapBytes: 4 << 20})
		if via == sim.VforkExec {
			if m.Requests != 0 || m.MigrateRefused != 1 {
				t.Errorf("vfork: %d migrated / %d refused, want 0/1", m.Requests, m.MigrateRefused)
			}
			if m.MigrateDowntimeNanos != 0 || m.NetPacketsSent != 0 {
				t.Errorf("vfork refusal still paid downtime %dns and %d packets",
					m.MigrateDowntimeNanos, m.NetPacketsSent)
			}
			continue
		}
		if m.Requests != 1 || m.MigrateRefused != 0 {
			t.Errorf("%v: %d migrated / %d refused, want 1/0", via, m.Requests, m.MigrateRefused)
		}
		if via == sim.Spawn {
			spawnPages = m.MigratePagesSent
		}
		if forkFamily[via] && m.MigratePagesSent <= spawnPages {
			t.Errorf("%v shipped %d pages, not more than spawn's %d", via, m.MigratePagesSent, spawnPages)
		}
	}
}

// TestMigrateChaosRetransmits: wire chaos eats page-stream chunks; the
// driver re-sends them in waves and every migration still completes.
func TestMigrateChaosRetransmits(t *testing.T) {
	clean := runMigrate(t, Config{Via: sim.ForkExec, Requests: 2, HeapBytes: 8 << 20})
	chaos := runMigrate(t, Config{Via: sim.ForkExec, Requests: 2, HeapBytes: 8 << 20,
		Faults: fault.NetChaos(7, 0)})
	if chaos.NetDrops == 0 {
		t.Fatal("chaos schedule dropped nothing")
	}
	if chaos.Requests != 2 {
		t.Errorf("%d migrations completed under chaos, want 2", chaos.Requests)
	}
	if chaos.NetPacketsSent <= clean.NetPacketsSent {
		t.Errorf("chaos sent %d packets, clean %d; retransmissions missing",
			chaos.NetPacketsSent, clean.NetPacketsSent)
	}
	// Retransmission waves cost wall-clock on the cell timeline (lost
	// pre-copy chunks stall the round, not the outage — downtime only
	// grows when "final" chunks are eaten).
	if chaos.VirtualNanos <= clean.VirtualNanos {
		t.Errorf("chaos elapsed %dns not above clean %dns; retransmission waves must cost time",
			chaos.VirtualNanos, clean.VirtualNanos)
	}
	if chaos.MigrateDowntimeNanos < clean.MigrateDowntimeNanos {
		t.Errorf("chaos downtime %dns below clean %dns", chaos.MigrateDowntimeNanos, clean.MigrateDowntimeNanos)
	}
}
