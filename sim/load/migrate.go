package load

import (
	"errors"
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/cost"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/sim"
	simnet "repro/sim/net"
)

// The Migrate scenario: live migration of one resident process between
// two machines over the sim/net fabric, by iterative pre-copy on top of
// the COW dirty tracking (internal/addrspace/pages.go) and the
// checkpoint/restore substrate (internal/kernel/checkpoint.go).
//
// One migration is the textbook loop:
//
//	round 0   checkpoint the migrant in full (rearming the dirty
//	          tracking), ship every page over the wire, and restore
//	          the process shell on the destination — the source keeps
//	          running throughout;
//	round r   the migrant keeps dirtying its heap; capture exactly the
//	          pages written since round r-1 (dirty-only, rearmed),
//	          ship them, and overwrite the destination's stale copies;
//	stop      freeze the source, capture the final residue plus the
//	          runtime state (threads, fds, signals), ship it, finish
//	          the restore, and resume on the destination. Only this
//	          phase is downtime.
//
// What the migrant is depends on Config.Via, which is the paper's
// point: a fork-family process (ForkExec, EmulatedFork, EagerForkExec)
// carries the parent's dirtied heap, so every pre-copy round re-ships
// Θ(MutateBytes) and the stop-and-copy residue is Θ(dirty heap) — the
// entangled address space follows the process around the cluster. A
// spawned or Builder-constructed process owns only its own image:
// round 0 is small, later rounds converge to nothing, and downtime is
// flat in the parent's heap size (E16). A vfork child cannot be
// migrated at all — it borrows the parent's address space — and the
// checkpoint refuses cleanly; the run counts the refusal and moves on.
//
// The page stream is chunked onto the fabric, so wire latency, per-byte
// cost, and fault schedules (drops, partitions) apply: lost chunks are
// re-sent in deterministic waves, and a link that stays dead fails the
// run rather than hanging it. Everything is single-threaded discrete
// event simulation like the other network cells — bit-identical at any
// GOMAXPROCS or shard count.

// Cell wiring: source and destination addresses, the page-stream chunk
// size, the metadata frame that rides with the final residue, and the
// retransmission budget per chunk.
const (
	migSrcAddr = 0
	migDstAddr = 1

	migChunkBytes  = 256 << 10
	migHdrBytes    = 4096
	migMaxAttempts = 16
)

// migrateCell is one Migrate run: two machines, the fabric between
// them, and the counters the loop accumulates.
type migrateCell struct {
	cfg   Config
	model cost.Model
	fab   *simnet.Fabric
	src   *sim.System
	dst   *sim.System

	heapStart uint64 // source host's server-heap base VA
	rounds    int    // pre-copy rounds per migration (round 0 included)

	migrations uint64
	refused    uint64
	creations  uint64
	roundsRun  uint64
	pagesSent  uint64     // 4 KiB units shipped, all rounds + residue
	downtime   cost.Ticks // summed stop-and-copy outage
	peakPages  uint64
}

// pageRecBytes sums captured records' payload in bytes.
func pageRecBytes(recs []addrspace.PageRecord) uint64 {
	var n uint64
	for i := range recs {
		n += recs[i].Pages() << mem.PageShift
	}
	return n
}

// runMigrateCell executes the Migrate scenario.
func runMigrateCell(cfg Config) (*Metrics, error) {
	cfg = cfg.withDefaults()
	boot := func() (*sim.System, error) {
		return sim.NewSystem(
			sim.WithRAM(cfg.RAMBytes),
			sim.WithCPUs(cfg.CPUs),
			sim.WithUserland("true", "echo", "cat", "hog", "smpspin"),
		)
	}
	src, err := boot()
	if err != nil {
		return nil, err
	}
	// The source is a warmed server — Prepare dirties the resident
	// heap the fork-family migrants will drag along.
	prep, err := Prepare(src, cfg)
	if err != nil {
		return nil, err
	}
	// The destination boots identically but stays cold: the migrant's
	// state arrives over the wire, not from a local warm-up.
	dst, err := boot()
	if err != nil {
		return nil, err
	}

	var opts []simnet.Option
	if cfg.Faults != nil {
		opts = append(opts, simnet.WithFaults(cfg.Faults))
	}
	fab, err := simnet.New(2, cost.DefaultModel(), opts...)
	if err != nil {
		return nil, err
	}

	c := &migrateCell{
		cfg:       cfg,
		model:     cost.DefaultModel(),
		fab:       fab,
		src:       src,
		dst:       dst,
		heapStart: prep.heapStart,
		rounds:    cfg.Workers,
	}
	if c.rounds < 1 {
		c.rounds = 1
	}

	// Measure from here, warm-up excluded like every scenario.
	srcK, dstK := src.Kernel(), dst.Kernel()
	srcK.Meter().ResetCounters()
	dstK.Meter().ResetCounters()
	cswBase := srcK.ContextSwitches() + dstK.ContextSwitches()
	t0 := srcK.Elapsed()

	for i := 0; i < cfg.Requests; i++ {
		if err := c.migrateOnce(); err != nil {
			return nil, fmt.Errorf("load: migrate via %v: %w", cfg.Via, err)
		}
	}

	elapsed := uint64(srcK.Elapsed() - t0)
	m := &Metrics{
		Scenario:  string(cfg.Scenario),
		Strategy:  cfg.Via.String(),
		HeapBytes: prep.heapBytes,
		RAMBytes:  cfg.RAMBytes,
		NumCPUs:   cfg.CPUs,

		Requests:  c.migrations,
		Creations: c.creations,

		VirtualNanos: elapsed,
		PeakRSSBytes: c.peakPages * uint64(mem.PageSize),

		MigrateRounds:        c.roundsRun,
		MigratePagesSent:     c.pagesSent,
		MigrateDowntimeNanos: uint64(c.downtime),
		MigrateRefused:       c.refused,
	}
	for _, meter := range []*cost.Meter{srcK.Meter(), dstK.Meter()} {
		m.PageFaults += meter.PageFaults
		m.PageCopies += meter.PageCopies
		m.PageZeroes += meter.PageZeroes
		m.PTECopies += meter.PTECopies
		m.TLBShootdowns += meter.TLBShootdowns
		m.Syscalls += meter.Syscalls
		m.Instructions += meter.Instructions
	}
	m.ContextSwitches = srcK.ContextSwitches() + dstK.ContextSwitches() - cswBase
	tot := fab.Totals()
	m.NetPacketsSent = tot.PacketsSent
	m.NetPacketsRecv = tot.PacketsRecv
	m.NetBytesSent = tot.BytesSent
	m.NetBytesRecv = tot.BytesRecv
	m.NetDrops = tot.DropsSend + tot.DropsRecv
	for _, fl := range fab.Flows() {
		m.NetFlows = append(m.NetFlows, NetFlow{
			Src: fl.Src, Dst: fl.Dst, Flow: fl.Flow,
			Packets: fl.Packets, Bytes: fl.Bytes, Drops: fl.Drops,
		})
	}
	if elapsed > 0 {
		m.RequestsPerVSec = float64(m.Requests) * 1e9 / float64(elapsed)
		m.CreationsPerVSec = float64(m.Creations) * 1e9 / float64(elapsed)
	}
	return m, nil
}

// createMigrant builds one migrant on the source per the strategy.
// Fork-family strategies fork the warmed server itself — the child
// carries the dirty heap, which is exactly the paper's entanglement.
// Spawn and Builder create a self-contained process from an image.
func (c *migrateCell) createMigrant() (*kernel.Process, error) {
	k := c.src.Kernel()
	host := c.src.Host()
	switch c.cfg.Via {
	case sim.ForkExec, sim.EmulatedFork:
		return k.Fork(host)
	case sim.EagerForkExec:
		return k.ForkWithMode(host, kernel.ForkEager)
	case sim.VforkExec:
		return k.ForkWithMode(host, kernel.ForkVfork)
	default: // sim.Spawn, sim.Builder
		p, err := c.src.Command("true").Via(c.cfg.Via).Create()
		if err != nil {
			return nil, err
		}
		return p.Raw(), nil
	}
}

// mutate re-dirties the migrant's share of the server heap — the work
// the process "does" while a pre-copy round is in flight. Migrants
// without the inherited heap (spawned, Builder-built) have nothing at
// that address and skip it: their rounds converge immediately.
func (c *migrateCell) mutate(p *kernel.Process) error {
	if c.cfg.MutateBytes == 0 || p.Space().FindVMA(c.heapStart) == nil {
		return nil
	}
	n := c.cfg.MutateBytes
	return p.Space().Touch(c.heapStart, n, addrspace.AccessWrite)
}

// sampleRSS tracks the two machines' allocation high-water mark.
func (c *migrateCell) sampleRSS() {
	for _, k := range []*kernel.Kernel{c.src.Kernel(), c.dst.Kernel()} {
		if a := k.Phys().AllocatedPages(); a > c.peakPages {
			c.peakPages = a
		}
	}
}

// migrateOnce moves one migrant from src to dst.
func (c *migrateCell) migrateOnce() error {
	srcK, dstK := c.src.Kernel(), c.dst.Kernel()
	p, err := c.createMigrant()
	if err != nil {
		return err
	}
	c.creations++
	defer srcK.DestroyProcess(p)

	// Round 0: full checkpoint, rearming the dirty tracking.
	img, err := srcK.CheckpointProcess(p, kernel.CheckpointOpts{Rearm: true})
	if err != nil {
		var ce *kernel.CheckpointError
		if errors.As(err, &ce) {
			// Not migratable (a vfork borrower, typically): a clean
			// refusal, counted, not a failure.
			c.refused++
			return nil
		}
		return err
	}
	arrival, err := c.ship("precopy", img.PageBytes()+migHdrBytes)
	if err != nil {
		return err
	}
	dstK.AdvanceTo(arrival)
	rp, err := dstK.RestoreProcess(img)
	if err != nil {
		return fmt.Errorf("restore round 0: %w", err)
	}
	defer dstK.DestroyProcess(rp)
	c.pagesSent += img.PageBytes() >> mem.PageShift
	c.roundsRun++
	c.syncRound()

	// Pre-copy rounds 1..n-1: the migrant keeps running (and
	// dirtying); each round harvests and re-ships exactly the pages
	// written since the last.
	for r := 1; r < c.rounds; r++ {
		if err := c.mutate(p); err != nil {
			return err
		}
		recs := p.Space().CapturePages(true, true)
		if len(recs) == 0 {
			break // converged: nothing dirtied since the last round
		}
		arrival, err := c.ship("precopy", pageRecBytes(recs))
		if err != nil {
			return err
		}
		dstK.AdvanceTo(arrival)
		for _, rec := range recs {
			if err := rp.Space().InstallPage(rec); err != nil {
				return fmt.Errorf("install round %d page %#x: %v", r, rec.VA, err)
			}
		}
		c.pagesSent += pageRecBytes(recs) >> mem.PageShift
		c.roundsRun++
		c.syncRound()
	}

	// Stop-and-copy: one last burst of dirtying (the work done while
	// the final round was on the wire), then freeze the source and
	// ship the residue plus the runtime state. This is the outage.
	if err := c.mutate(p); err != nil {
		return err
	}
	tStop := srcK.Elapsed()
	final, err := srcK.CheckpointProcess(p, kernel.CheckpointOpts{DirtyOnly: true})
	if err != nil {
		return fmt.Errorf("stop-and-copy checkpoint: %w", err)
	}
	arrival, err = c.ship("final", final.PageBytes()+migHdrBytes)
	if err != nil {
		return err
	}
	dstK.AdvanceTo(arrival)
	for _, rec := range final.Pages {
		if err := rp.Space().InstallPage(rec); err != nil {
			return fmt.Errorf("install residue page %#x: %v", rec.VA, err)
		}
	}
	c.pagesSent += final.PageBytes() >> mem.PageShift
	c.sampleRSS()
	resume := dstK.Elapsed()
	if resume < arrival {
		resume = arrival
	}
	c.downtime += resume - tStop
	// The source observes the handoff ack before tearing down its
	// copy; the next migration starts after that.
	srcK.AdvanceTo(resume)
	c.migrations++
	return nil
}

// syncRound closes one pre-copy round: the destination has installed
// the round's pages, and the source waits for the ack before starting
// the next — synchronous rounds keep the cell single-threaded and
// deterministic.
func (c *migrateCell) syncRound() {
	c.sampleRSS()
	srcK, dstK := c.src.Kernel(), c.dst.Kernel()
	if e := dstK.Elapsed(); e > srcK.Elapsed() {
		srcK.AdvanceTo(e)
	}
}

// ship streams bytes from src to dst as chunked packets on the flow,
// returning the arrival time of the last chunk. Chunks lost to the
// fault schedule — on send or at delivery — are re-sent in waves: send
// every unacknowledged chunk, drain the wire, repeat, each wave a link
// latency later. A chunk that exceeds its attempt budget fails the
// migration (the link is effectively dead).
func (c *migrateCell) ship(flow string, bytes uint64) (cost.Ticks, error) {
	now := c.src.Kernel().Elapsed()
	nchunks := int((bytes + migChunkBytes - 1) / migChunkBytes)
	if nchunks < 1 {
		nchunks = 1
	}
	size := func(i int) uint64 {
		if i == nchunks-1 {
			if rem := bytes - uint64(i)*migChunkBytes; rem > 0 {
				return rem
			}
		}
		return migChunkBytes
	}
	acked := make([]bool, nchunks)
	attempts := make([]int, nchunks)
	var last cost.Ticks
	for remaining := nchunks; remaining > 0; {
		waveEnd := now
		for i := 0; i < nchunks; i++ {
			if acked[i] {
				continue
			}
			if attempts[i] >= migMaxAttempts {
				return 0, fmt.Errorf("ship %s chunk %d/%d: dropped %d times, link dead",
					flow, i, nchunks, attempts[i])
			}
			attempts[i]++
			if p, ok := c.fab.Send(migSrcAddr, migDstAddr, flow, uint64(i), size(i), now); ok {
				if p.Arrival > waveEnd {
					waveEnd = p.Arrival
				}
			}
		}
		// Drain the wave: every queued chunk either arrives (acked by
		// its tag) or is eaten at delivery and stays unacknowledged.
		for {
			if _, ok := c.fab.NextArrival(); !ok {
				break
			}
			p, ok := c.fab.DeliverNext()
			if !ok {
				continue
			}
			if !acked[p.Tag] {
				acked[p.Tag] = true
				remaining--
			}
			if p.Arrival > last {
				last = p.Arrival
			}
		}
		// Next wave starts a link latency after this one finished.
		next := waveEnd + c.model.NetLinkLatency
		if next <= now {
			next = now + c.model.NetLinkLatency
		}
		now = next
	}
	return last, nil
}
