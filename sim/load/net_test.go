package load

import (
	"encoding/json"
	"testing"

	"repro/sim"
	"repro/sim/fault"
)

// netJSON renders metrics as the byte string the determinism
// assertions compare.
func netJSON(t *testing.T, m *Metrics) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestNetLBRestartStorm is E15's mechanism at unit scale: the mid-run
// backend restart re-pays the pool warm-up, which under fork exceeds
// the client timeout (retry storm) and under spawn does not.
func TestNetLBRestartStorm(t *testing.T) {
	run := func(via sim.Strategy) *Metrics {
		m, err := Run(Config{Scenario: NetLB, Via: via})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fork, spawn := run(sim.ForkExec), run(sim.Spawn)
	if fork.NetTimeouts == 0 {
		t.Error("fork backend restart caused no timeouts; the re-warm window is invisible")
	}
	if spawn.NetTimeouts != 0 {
		t.Errorf("spawn backend restart caused %d timeouts; re-warm should fit the deadline", spawn.NetTimeouts)
	}
	if fork.NetRetries <= spawn.NetRetries {
		t.Errorf("fork retries = %d, spawn = %d; want a fork retry storm", fork.NetRetries, spawn.NetRetries)
	}
	// Every request resolves exactly once, success or failure.
	for _, m := range []*Metrics{fork, spawn} {
		if m.Requests+m.FailedRequests != 64 {
			t.Errorf("%s: %d served + %d failed != 64 requests", m.Strategy, m.Requests, m.FailedRequests)
		}
	}
}

// TestKVShardChaosRetries: wire-level chaos turns into retries (and
// at 4% drop rate, recoveries), with packet conservation intact.
func TestKVShardChaosRetries(t *testing.T) {
	m, err := Run(Config{Scenario: KVShard, Faults: fault.NetChaos(7, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if m.NetDrops == 0 {
		t.Error("chaos schedule dropped nothing")
	}
	if m.NetRetries == 0 {
		t.Error("drops caused no retries")
	}
	if m.Requests+m.FailedRequests != 64 {
		t.Errorf("%d served + %d failed != 64 requests", m.Requests, m.FailedRequests)
	}
	if m.NetPacketsRecv > m.NetPacketsSent {
		t.Errorf("delivered %d > sent %d", m.NetPacketsRecv, m.NetPacketsSent)
	}
	if m.NetPacketsSent-m.NetPacketsRecv > m.NetDrops {
		t.Errorf("%d packets vanished beyond the %d counted drops",
			m.NetPacketsSent-m.NetPacketsRecv, m.NetDrops)
	}
}

// TestNetSplitFailsRequests: a partition longer than the retry budget
// fails the requests routed into it — and heals afterwards.
func TestNetSplitFailsRequests(t *testing.T) {
	// Isolate shard 1 for the whole run: every get hashed to it burns
	// all attempts and fails; the other shards are untouched.
	m, err := Run(Config{Scenario: KVShard, Nodes: 2, Faults: fault.NetSplit{
		Isolated: []int{2}, From: 0, Until: 1 << 62,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if m.FailedRequests != 32 {
		t.Errorf("failed = %d, want 32 (every request hashed to the isolated shard)", m.FailedRequests)
	}
	if m.Requests != 32 {
		t.Errorf("served = %d, want 32", m.Requests)
	}
	wantTimeouts := uint64(32 * netMaxAttempts)
	if m.NetTimeouts != wantTimeouts {
		t.Errorf("timeouts = %d, want %d (full attempt budget per isolated request)", m.NetTimeouts, wantTimeouts)
	}
}

// TestNetCellDeterminism: the same Config replays byte-identical
// Metrics, chaos included, and the template-backed path (what the
// fleet runs) matches the cold path bit for bit.
func TestNetCellDeterminism(t *testing.T) {
	cfgs := []Config{
		{Scenario: NetLB, Via: sim.ForkExec},
		{Scenario: NetLB, Via: sim.Spawn, Nodes: 3, Requests: 48},
		{Scenario: KVShard, Faults: fault.NetChaos(11, 4)},
	}
	for _, cfg := range cfgs {
		m1, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, b := netJSON(t, m1), netJSON(t, m2)
		if a != b {
			t.Errorf("%s/%v replay diverged:\n%s\n%s", cfg.Scenario, cfg.Via, a, b)
		}
		tm, err := NewTemplates().Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c := netJSON(t, tm); c != a {
			t.Errorf("%s/%v template path diverged from cold:\n%s\n%s", cfg.Scenario, cfg.Via, c, a)
		}
	}
}

// TestNetFaultGuard: single-machine scenarios still reject fault
// schedules (other than prefork); distributed ones accept them.
func TestNetFaultGuard(t *testing.T) {
	if _, err := Run(Config{Scenario: Pipeline, Faults: fault.NetChaos(1, 0)}); err == nil {
		t.Error("pipeline accepted a fault schedule")
	}
	if _, err := Run(Config{Scenario: NetLB, Requests: 4, Faults: fault.NetChaos(1, 0)}); err != nil {
		t.Errorf("netlb rejected a fault schedule: %v", err)
	}
}
