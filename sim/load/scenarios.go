package load

import (
	"strconv"

	"repro/internal/addrspace"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/sim"
	"repro/sim/fault"
)

// prefork is the fork-per-request web server: every synthetic request
// is handled by a freshly created worker process. The server keeps one
// request in flight per CPU (closed loop with a CPU-wide window), so
// on a multicore machine the workers genuinely overlap in virtual
// time. Under fork the per-request cost includes duplicating the
// server's page tables — Θ(heap) — so throughput falls as the server
// grows; under spawn or the builder it is flat. This is §5's server
// claim as a workload.
//
// With Config.Faults installed the loop runs in chaos mode: a failed
// creation or a worker lost to an injected fault (ENOMEM, OOM kill, a
// kill-wave crash via fault.PointKill) counts against FailedRequests
// and the server keeps serving — the survival metric E11 reports —
// instead of aborting the run.
func (d *driver) prefork() error {
	window := d.cfg.Window
	if window < 1 {
		window = DefaultWindow(Prefork, d.cfg.CPUs)
	}
	chaos := d.cfg.Faults != nil
	var inflight []*sim.Cmd
	launched := 0
	abort := func(err error) error {
		for _, cmd := range inflight {
			cmd.Process.Kill()
			cmd.Wait()
		}
		return err
	}
	for launched < d.cfg.Requests || len(inflight) > 0 {
		for len(inflight) < window && launched < d.cfg.Requests {
			cmd := d.sys.Command("true").Via(d.cfg.Via)
			launched++
			if err := cmd.Start(); err != nil {
				if chaos {
					d.failed++ // creation refused: the request is lost, the server survives
					continue
				}
				return abort(err)
			}
			d.creations++
			inflight = append(inflight, cmd)
		}
		if len(inflight) == 0 {
			continue // every launch in this window failed under chaos
		}
		// Sample while workers are live, so the peak reflects the
		// per-request footprint (stack, image, mirrored page table),
		// not just the server heap.
		d.inflight = len(inflight)
		d.sample()
		cmd := inflight[0]
		inflight = inflight[1:]
		if chaos && d.k.Faults().Fail(fault.PointKill, 1) != 0 {
			// Kill wave: the worker crashes mid-request.
			cmd.Process.Kill()
		}
		switch err := cmd.Wait(); {
		case err == nil:
			d.requests++
		case chaos:
			d.failed++ // worker died (injected ENOMEM, OOM kill, crash)
		default:
			return abort(err)
		}
	}
	return nil
}

// pipeline is the shell farm: each unit of work builds an
// echo|cat|…|cat pipeline of Workers stages wired through kernel
// pipes, starts every stage through the configured strategy, and
// drains it. The final stage writes to the console (discarded).
func (d *driver) pipeline() error {
	depth := d.cfg.Workers
	if depth < 2 {
		depth = 2
	}
	for i := 0; i < d.cfg.Requests; i++ {
		cmds := make([]*sim.Cmd, depth)
		cmds[0] = d.sys.Command("echo", "req", strconv.Itoa(i))
		for j := 1; j < depth; j++ {
			cmds[j] = d.sys.Command("cat")
		}
		files := make([]*sim.File, 0, 2*(depth-1))
		for j := 0; j < depth-1; j++ {
			r, w := d.sys.Pipe()
			cmds[j].Stdout = w
			cmds[j+1].Stdin = r
			files = append(files, r, w)
		}
		closeAll := func() {
			for _, f := range files {
				f.Close()
			}
		}
		for j := range cmds {
			if err := cmds[j].Via(d.cfg.Via).Start(); err != nil {
				// Tear down the stages already launched so the
				// error surfaces instead of a wedged machine.
				for _, started := range cmds[:j] {
					started.Process.Kill()
					started.Wait()
				}
				closeAll()
				return err
			}
			d.creations++
		}
		// Drop the host's pipe ends so EOF propagates stage to stage.
		closeAll()
		d.inflight = depth
		d.sample()
		for j := range cmds {
			if err := cmds[j].Wait(); err != nil {
				return err
			}
		}
		d.requests++
	}
	return nil
}

// checkpoint is the Redis-style snapshotter: each cycle takes a
// point-in-time snapshot of the server's heap, then the server keeps
// mutating MutateBytes of it while the snapshot is held — every
// mutated page pays a COW break (the PageCopies column). The snapshot
// mechanism follows the strategy:
//
//   - ForkExec/VforkExec: kernel COW fork — the cheap snapshot the
//     paper concedes fork is still good for (vfork itself cannot
//     snapshot, it shares the address space, so it gets COW fork too);
//   - EagerForkExec: the 1970s ablation, physically copying the heap;
//   - Spawn/Builder/EmulatedFork: the fork-less path — a §5 kernel
//     without fork snapshots through cross-process reads and writes,
//     paying Θ(resident bytes) in user space.
func (d *driver) checkpoint() error {
	host := d.sys.Host()
	heap := d.cfg.HeapBytes
	mutate := d.cfg.MutateBytes
	if mutate > heap {
		mutate = heap
	}
	off := uint64(0)
	for i := 0; i < d.cfg.Requests; i++ {
		snap, err := d.snapshot(host)
		if err != nil {
			return err
		}
		d.creations++
		if mutate > 0 {
			if off+mutate > heap {
				off = 0
			}
			if err := host.Space().Touch(d.heapStart+off, mutate, addrspace.AccessWrite); err != nil {
				d.k.DestroyProcess(snap)
				return err
			}
			off += mutate
		}
		d.sample()
		// The snapshot has been "persisted"; release the old view.
		d.k.DestroyProcess(snap)
		d.requests++
	}
	return nil
}

func (d *driver) snapshot(host *kernel.Process) (*kernel.Process, error) {
	switch d.cfg.Via {
	case sim.ForkExec, sim.VforkExec:
		return d.k.Fork(host)
	case sim.EagerForkExec:
		return d.k.ForkWithMode(host, kernel.ForkEager)
	default:
		return core.EmulateFork(d.k, host)
	}
}

// smpserver is the Redis/SMP worst case §5 warns about: a real
// multithreaded server (one spinning worker thread per CPU, each
// rewriting its own slice of a dirty heap) takes periodic fork
// snapshots *mid-traffic*. Every snapshot COW-downgrades the server's
// page tables while its threads are live on other cores — an IPI per
// remote core — and every post-snapshot heap write pays a COW break
// plus another IPI round. The fork-less strategies snapshot through
// the cross-process API instead: Θ(heap) copying, but no shootdowns,
// so their cost stays flat as cores grow.
//
// Requests counts snapshot cycles. ServerCPUNanos reports how much
// CPU time the server's threads still got — the service capacity the
// snapshot tax did not consume.
func (d *driver) smpserver() error {
	threads := d.cfg.CPUs
	if threads > 8 {
		threads = 8 // smpspin has 8 worker stacks
	}
	srv := d.sys.Command("smpspin",
		strconv.Itoa(threads), strconv.FormatUint(d.cfg.HeapBytes, 10))
	if err := srv.Via(sim.Spawn).Start(); err != nil {
		return err
	}
	server := srv.Process.Raw()
	cpuBase := uint64(server.TotalCPUTicks())

	// One traffic slice is enough virtual time for every worker to
	// rewrite its slice at least once between snapshots.
	const slice = 5_000_000 // 5ms virtual
	finish := func(err error) error {
		srv.Process.Kill()
		if werr := srv.Wait(); err == nil && werr != nil && sim.AsExitError(werr) == nil {
			return werr
		}
		d.serverCPU = uint64(server.TotalCPUTicks()) - cpuBase
		return err
	}
	for i := 0; i < d.cfg.Requests; i++ {
		// Serve traffic, then snapshot mid-flight.
		if err := d.k.Run(kernel.RunLimits{MaxTicks: slice}); err != nil {
			return finish(err)
		}
		snap, err := d.snapshot(server)
		if err != nil {
			return finish(err)
		}
		d.creations++
		// The snapshot is held while traffic continues: the
		// workers' writes break COW pages one by one, each paying
		// the remote-core invalidations.
		if err := d.k.Run(kernel.RunLimits{MaxTicks: slice}); err != nil {
			d.k.DestroyProcess(snap)
			return finish(err)
		}
		d.sample()
		// Snapshot "persisted": release the old view.
		d.k.DestroyProcess(snap)
		d.requests++
	}
	return finish(nil)
}

// buildfarm is the parallel build: a driver keeps 2*CPUs compile jobs
// in flight, each a freshly created process that allocates and
// write-touches a private working set (4 MiB, a compiler-sized
// footprint) and exits. On a multicore machine the jobs overlap; the
// creation strategy decides whether job launch serializes on the
// parent's page tables (fork) or stays flat (spawn/builder).
func (d *driver) buildfarm() error {
	window := d.cfg.Window
	if window < 1 {
		window = DefaultWindow(BuildFarm, d.cfg.CPUs)
	}
	var inflight []*sim.Cmd
	launched := 0
	abort := func(err error) error {
		for _, cmd := range inflight {
			cmd.Process.Kill()
			cmd.Wait()
		}
		return err
	}
	for d.requests < uint64(d.cfg.Requests) {
		for len(inflight) < window && launched < d.cfg.Requests {
			cmd := d.sys.Command("hog", "4").Via(d.cfg.Via)
			if err := cmd.Start(); err != nil {
				return abort(err)
			}
			d.creations++
			launched++
			inflight = append(inflight, cmd)
		}
		d.inflight = len(inflight)
		d.sample()
		cmd := inflight[0]
		inflight = inflight[1:]
		if err := cmd.Wait(); err != nil {
			return abort(err)
		}
		d.requests++
	}
	return nil
}

// forkstorm launches Workers children back to back without waiting,
// holding every one alive at once — the burst that floods the run
// queue — then drains and reaps the whole wave, Requests times.
func (d *driver) forkstorm() error {
	burst := d.cfg.Workers
	for wave := 0; wave < d.cfg.Requests; wave++ {
		cmds := make([]*sim.Cmd, 0, burst)
		for j := 0; j < burst; j++ {
			cmd := d.sys.Command("true").Via(d.cfg.Via)
			if err := cmd.Start(); err != nil {
				for _, started := range cmds {
					started.Process.Kill()
					started.Wait()
				}
				return err
			}
			cmds = append(cmds, cmd)
			d.creations++
		}
		d.inflight = len(cmds)
		d.sample()
		for _, cmd := range cmds {
			if err := cmd.Wait(); err != nil {
				return err
			}
			d.requests++
		}
	}
	return nil
}
