package load

import (
	"strconv"

	"repro/internal/addrspace"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/sim"
)

// prefork is the fork-per-request web server: every synthetic request
// is handled by a freshly created worker process that runs and exits
// before the next request is accepted (closed loop). Under fork the
// per-request cost includes duplicating the server's page tables —
// Θ(heap) — so throughput falls as the server grows; under spawn or
// the builder it is flat. This is §5's server claim as a workload.
func (d *driver) prefork() error {
	for i := 0; i < d.cfg.Requests; i++ {
		cmd := d.sys.Command("true").Via(d.cfg.Via)
		if err := cmd.Start(); err != nil {
			return err
		}
		d.creations++
		// Sample while the worker is live, so the peak reflects the
		// per-request footprint (stack, image, mirrored page table),
		// not just the server heap.
		d.sample()
		if err := cmd.Wait(); err != nil {
			return err
		}
		d.requests++
	}
	return nil
}

// pipeline is the shell farm: each unit of work builds an
// echo|cat|…|cat pipeline of Workers stages wired through kernel
// pipes, starts every stage through the configured strategy, and
// drains it. The final stage writes to the console (discarded).
func (d *driver) pipeline() error {
	depth := d.cfg.Workers
	if depth < 2 {
		depth = 2
	}
	for i := 0; i < d.cfg.Requests; i++ {
		cmds := make([]*sim.Cmd, depth)
		cmds[0] = d.sys.Command("echo", "req", strconv.Itoa(i))
		for j := 1; j < depth; j++ {
			cmds[j] = d.sys.Command("cat")
		}
		files := make([]*sim.File, 0, 2*(depth-1))
		for j := 0; j < depth-1; j++ {
			r, w := d.sys.Pipe()
			cmds[j].Stdout = w
			cmds[j+1].Stdin = r
			files = append(files, r, w)
		}
		closeAll := func() {
			for _, f := range files {
				f.Close()
			}
		}
		for j := range cmds {
			if err := cmds[j].Via(d.cfg.Via).Start(); err != nil {
				// Tear down the stages already launched so the
				// error surfaces instead of a wedged machine.
				for _, started := range cmds[:j] {
					started.Process.Kill()
					started.Wait()
				}
				closeAll()
				return err
			}
			d.creations++
		}
		// Drop the host's pipe ends so EOF propagates stage to stage.
		closeAll()
		d.sample()
		for j := range cmds {
			if err := cmds[j].Wait(); err != nil {
				return err
			}
		}
		d.requests++
	}
	return nil
}

// checkpoint is the Redis-style snapshotter: each cycle takes a
// point-in-time snapshot of the server's heap, then the server keeps
// mutating MutateBytes of it while the snapshot is held — every
// mutated page pays a COW break (the PageCopies column). The snapshot
// mechanism follows the strategy:
//
//   - ForkExec/VforkExec: kernel COW fork — the cheap snapshot the
//     paper concedes fork is still good for (vfork itself cannot
//     snapshot, it shares the address space, so it gets COW fork too);
//   - EagerForkExec: the 1970s ablation, physically copying the heap;
//   - Spawn/Builder/EmulatedFork: the fork-less path — a §5 kernel
//     without fork snapshots through cross-process reads and writes,
//     paying Θ(resident bytes) in user space.
func (d *driver) checkpoint() error {
	host := d.sys.Host()
	heap := d.cfg.HeapBytes
	mutate := d.cfg.MutateBytes
	if mutate > heap {
		mutate = heap
	}
	off := uint64(0)
	for i := 0; i < d.cfg.Requests; i++ {
		snap, err := d.snapshot(host)
		if err != nil {
			return err
		}
		d.creations++
		if mutate > 0 {
			if off+mutate > heap {
				off = 0
			}
			if err := host.Space().Touch(d.heapStart+off, mutate, addrspace.AccessWrite); err != nil {
				d.k.DestroyProcess(snap)
				return err
			}
			off += mutate
		}
		d.sample()
		// The snapshot has been "persisted"; release the old view.
		d.k.DestroyProcess(snap)
		d.requests++
	}
	return nil
}

func (d *driver) snapshot(host *kernel.Process) (*kernel.Process, error) {
	switch d.cfg.Via {
	case sim.ForkExec, sim.VforkExec:
		return d.k.Fork(host)
	case sim.EagerForkExec:
		return d.k.ForkWithMode(host, kernel.ForkEager)
	default:
		return core.EmulateFork(d.k, host)
	}
}

// forkstorm launches Workers children back to back without waiting,
// holding every one alive at once — the burst that floods the run
// queue — then drains and reaps the whole wave, Requests times.
func (d *driver) forkstorm() error {
	burst := d.cfg.Workers
	for wave := 0; wave < d.cfg.Requests; wave++ {
		cmds := make([]*sim.Cmd, 0, burst)
		for j := 0; j < burst; j++ {
			cmd := d.sys.Command("true").Via(d.cfg.Via)
			if err := cmd.Start(); err != nil {
				for _, started := range cmds {
					started.Process.Kill()
					started.Wait()
				}
				return err
			}
			cmds = append(cmds, cmd)
			d.creations++
		}
		d.sample()
		for _, cmd := range cmds {
			if err := cmd.Wait(); err != nil {
				return err
			}
			d.requests++
		}
	}
	return nil
}
