// Package load is the simulator's workload driver: deterministic,
// closed-loop, high-volume scenarios that exercise sustained process
// creation on a sim.System — the scale dimension of "A fork() in the
// road" (HotOS'19).
//
// The paper's §5 argument is not that one fork is slow, it is that
// fork is the wrong API *at scale*: its cost grows with the parent's
// address space, so a server that creates a process per request gets
// slower as it gets bigger. Figure 1 shows single creations; this
// package drains tens of thousands of them and reports throughput.
//
// Six scenarios, each parameterized by creation strategy (sim.Via),
// CPU count (Config.CPUs), scale, and server heap size:
//
//	Prefork    — a web server creating one worker process per request
//	             (the classic fork-per-connection design), keeping one
//	             request in flight per CPU; throughput collapses under
//	             fork as the server heap grows, and is flat under
//	             spawn or the cross-process builder.
//	Pipeline   — a shell-style farm building echo|cat|…|cat pipelines
//	             and draining them; exercises pipes plus multi-process
//	             creation per unit of work.
//	Checkpoint — a Redis-style snapshot loop: snapshot the server's
//	             heap, keep mutating it while the snapshot is held,
//	             pay the COW-fault tax on every mutated page. The one
//	             workload where fork's COW semantics genuinely help
//	             (§5's "fork remains useful for snapshots").
//	ForkStorm  — bursts of simultaneously live children, stressing the
//	             scheduler's run queues and burst teardown; the burst
//	             size scales with the CPU count.
//	SMPServer  — the Redis/SMP worst case: a real multithreaded server
//	             (one spinning worker thread per CPU, each rewriting
//	             its slice of a dirty heap) takes fork snapshots
//	             mid-traffic. Each snapshot COW-downgrades the page
//	             tables while threads run on other cores — one TLB-
//	             shootdown IPI per remote core, then another round per
//	             post-snapshot COW break — so fork's snapshot tax
//	             grows with the core count, while fork-less snapshots
//	             through the cross-process API stay IPI-free.
//	BuildFarm  — a parallel build keeping 2*CPUs compile jobs in
//	             flight, each with a private working set; measures how
//	             the creation strategy scales job launch with cores.
//
// Every run is a pure function of its Config: the simulator has no
// host-time or randomness inputs, so two runs with the same Config
// produce byte-identical Metrics at every CPU count — asserted by
// this package's determinism regression test. Metrics are
// virtual-time quantities (requests per *virtual* second, from the
// kernel's cost.Meter); host wall-clock speed is a property of the
// simulator, not the result.
//
//	m, err := load.Run(load.Config{
//		Scenario:  load.Prefork,
//		Via:       sim.Spawn,
//		Requests:  10000,
//		HeapBytes: 256 << 20,
//	})
//
// Config.Faults turns a run into a chaos run: a deterministic fault
// schedule from sim/fault is armed after warm-up, per-request
// failures (refused creations, OOM-killed or crash-waved workers) are
// counted in Metrics.FailedRequests instead of aborting, and the run
// stays exactly as reproducible as a clean one — the schedule is a
// pure function of the machine's virtual execution. Prefork is the
// failure-tolerant scenario; experiments.ChaosClaim (E11, `forkbench
// chaos`) and the fleet chaos scenario build on it.
//
// The distributed scenarios (NetLB, KVShard) put several Servers on
// sim/net's deterministic message fabric inside one cell: an L7
// balancer fronting a backend pool whose restarted member re-warms
// under the client retry timeout (E15, `forkbench netclaim`), and a
// shard-per-machine KV service with client retries. Their Metrics
// gain packet/byte/drop/timeout/retry counters and a per-flow log —
// all omitempty, so the network plane is free when disabled — which
// `forkbench metrics` renders in Prometheus text format (see README
// "Inter-machine network & metrics").
//
// Migrate is the live-migration cell: two machines on the fabric, a
// worker created per strategy on the source, iterative pre-copy of
// its dirtied pages over the wire (the COW dirty tracking, rearmed
// each round), then a stop-and-copy residue whose cost is the
// downtime — Θ(dirty heap) for the fork family, ~flat for spawn, a
// typed refusal for a mid-vfork borrower (E16, `forkbench migrate`).
// The fleet's Rebalance scenario runs this cell per machine, falling
// back to the rolling-restart tax when the checkpoint refuses.
//
// The forkbench CLI fronts this package (`forkbench load`), and
// internal/experiments uses it to regenerate the §5 server-claim
// table. The sim/fleet package runs many of these machines at once —
// Config.Window is its traffic-surge knob — multiplexed across host
// cores with deterministically merged metrics (`forkbench fleet`,
// and the parallel `forkbench load -sweep` path).
package load
