package load_test

import (
	"testing"

	"repro/sim"
	"repro/sim/load"
)

// TestPreforkDrainsAllRequests checks the closed loop completes and
// the counters add up under each strategy.
func TestPreforkDrainsAllRequests(t *testing.T) {
	for _, via := range sim.Strategies() {
		if via == sim.EmulatedFork {
			continue // Θ(resident bytes) per creation; covered once below
		}
		t.Run(via.String(), func(t *testing.T) {
			m, err := load.Run(load.Config{
				Scenario:  load.Prefork,
				Via:       via,
				Requests:  24,
				HeapBytes: 4 << 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			if m.Requests != 24 || m.Creations != 24 {
				t.Errorf("requests=%d creations=%d, want 24/24", m.Requests, m.Creations)
			}
			if m.VirtualNanos == 0 || m.RequestsPerVSec == 0 {
				t.Errorf("no virtual time recorded: %+v", m)
			}
			if m.PeakRSSBytes < m.HeapBytes {
				t.Errorf("peak RSS %d below resident heap %d", m.PeakRSSBytes, m.HeapBytes)
			}
		})
	}
}

// TestPreforkEmulatedFork runs the deliberately slow strategy once at
// a tiny scale so the path stays covered.
func TestPreforkEmulatedFork(t *testing.T) {
	m, err := load.Run(load.Config{
		Scenario: load.Prefork, Via: sim.EmulatedFork,
		Requests: 2, HeapBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 2 {
		t.Errorf("requests = %d, want 2", m.Requests)
	}
}

// TestPreforkThroughputOrdering is the paper's §5 claim at load-test
// scale: with a large server heap, spawn and the builder sustain
// higher request throughput than fork+exec.
func TestPreforkThroughputOrdering(t *testing.T) {
	run := func(via sim.Strategy) *load.Metrics {
		t.Helper()
		m, err := load.Run(load.Config{
			Scenario:  load.Prefork,
			Via:       via,
			Requests:  16,
			HeapBytes: 256 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fork := run(sim.ForkExec)
	spawn := run(sim.Spawn)
	builder := run(sim.Builder)
	if spawn.RequestsPerVSec <= fork.RequestsPerVSec {
		t.Errorf("spawn %.0f req/vs not above fork %.0f at 256MiB heap",
			spawn.RequestsPerVSec, fork.RequestsPerVSec)
	}
	if builder.RequestsPerVSec <= fork.RequestsPerVSec {
		t.Errorf("builder %.0f req/vs not above fork %.0f at 256MiB heap",
			builder.RequestsPerVSec, fork.RequestsPerVSec)
	}
	// And fork pays for the heap in PTE copies; spawn must not.
	if fork.PTECopies < 16*(256<<20)/4096 {
		t.Errorf("fork copied only %d PTEs; expected ≥ one per heap page per request", fork.PTECopies)
	}
	if spawn.PTECopies >= fork.PTECopies/10 {
		t.Errorf("spawn PTE copies %d suspiciously close to fork's %d", spawn.PTECopies, fork.PTECopies)
	}
}

// TestPipelineFarm drains pipelines and counts one creation per stage.
func TestPipelineFarm(t *testing.T) {
	m, err := load.Run(load.Config{
		Scenario:  load.Pipeline,
		Via:       sim.Spawn,
		Requests:  8,
		Workers:   4,
		HeapBytes: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 8 {
		t.Errorf("requests = %d, want 8", m.Requests)
	}
	if m.Creations != 8*4 {
		t.Errorf("creations = %d, want %d", m.Creations, 8*4)
	}
}

// TestCheckpointPaysCOWTax: under COW fork, mutating the heap while a
// snapshot is held must copy the mutated pages — and only those.
func TestCheckpointPaysCOWTax(t *testing.T) {
	const heap = 16 << 20
	const mutate = 2 << 20
	const cycles = 8
	m, err := load.Run(load.Config{
		Scenario:    load.Checkpoint,
		Via:         sim.ForkExec,
		Requests:    cycles,
		HeapBytes:   heap,
		MutateBytes: mutate,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCopies := uint64(cycles * mutate / 4096)
	if m.PageCopies < wantCopies {
		t.Errorf("page copies %d, want ≥ %d (one per mutated page)", m.PageCopies, wantCopies)
	}
	if m.PageCopies > 2*wantCopies {
		t.Errorf("page copies %d, want ≈ %d — far more than the mutated set", m.PageCopies, wantCopies)
	}
}

// TestCheckpointForklessCopiesEverything: the fork-less snapshot path
// copies Θ(resident bytes) regardless of the mutation rate.
func TestCheckpointForklessCopiesEverything(t *testing.T) {
	m, err := load.Run(load.Config{
		Scenario:    load.Checkpoint,
		Via:         sim.Spawn,
		Requests:    2,
		HeapBytes:   4 << 20,
		MutateBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshotting through cross-process reads/writes zeroes and
	// fills fresh frames for the whole heap each cycle.
	if m.PageZeroes < 2*(4<<20)/4096 {
		t.Errorf("fork-less snapshot zeroed %d pages; want ≥ one per heap page per cycle", m.PageZeroes)
	}
}

// TestForkStormHoldsBurstAlive checks the wave really is concurrent:
// at peak, every child's stack and image are resident on top of the
// server heap.
func TestForkStormHoldsBurstAlive(t *testing.T) {
	const burst = 100
	m, err := load.Run(load.Config{
		Scenario:  load.ForkStorm,
		Via:       sim.Spawn,
		Requests:  2,
		Workers:   burst,
		HeapBytes: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Creations != 2*burst || m.Requests != 2*burst {
		t.Errorf("creations=%d requests=%d, want %d", m.Creations, m.Requests, 2*burst)
	}
	// Each spawned child carries at least a page of stack; the peak
	// must sit clearly above the lone server heap.
	if m.PeakRSSBytes < m.HeapBytes+burst*4096 {
		t.Errorf("peak RSS %d does not reflect %d live children over a %d heap",
			m.PeakRSSBytes, burst, m.HeapBytes)
	}
}

// TestParseScenario round-trips every name and rejects junk.
func TestParseScenario(t *testing.T) {
	for _, s := range load.Scenarios() {
		got, err := load.ParseScenario(string(s))
		if err != nil || got != s {
			t.Errorf("ParseScenario(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := load.ParseScenario("bogus"); err == nil {
		t.Error("ParseScenario(bogus) succeeded")
	}
}

// TestSMPServerShootdownTaxGrowsWithCPUs is §5's multicore claim at
// the workload level: snapshotting a multithreaded server via fork
// costs remote-core IPIs that grow with the CPU count; the fork-less
// snapshot pays none at any count.
func TestSMPServerShootdownTaxGrowsWithCPUs(t *testing.T) {
	perSnap := func(via sim.Strategy, cpus int) float64 {
		t.Helper()
		m, err := load.Run(load.Config{
			Scenario: load.SMPServer, Via: via,
			CPUs: cpus, Requests: 3, HeapBytes: 8 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Requests != 3 || m.Creations != 3 {
			t.Fatalf("snapshots=%d creations=%d, want 3/3", m.Requests, m.Creations)
		}
		if m.ServerCPUNanos == 0 {
			t.Fatal("server threads got no CPU time — no traffic mid-snapshot")
		}
		return float64(m.TLBShootdowns) / float64(m.Requests)
	}
	prev := -1.0
	for _, cpus := range []int{1, 2, 4} {
		fork := perSnap(sim.ForkExec, cpus)
		if fork <= prev {
			t.Errorf("fork IPIs/snapshot not growing: %.0f at %d CPUs after %.0f", fork, cpus, prev)
		}
		prev = fork
		if cpus == 1 && fork != 0 {
			t.Errorf("1-CPU fork snapshot charged %.0f IPIs", fork)
		}
		if flat := perSnap(sim.Spawn, cpus); flat != 0 {
			t.Errorf("fork-less snapshot charged %.0f IPIs at %d CPUs", flat, cpus)
		}
	}
}

// TestBuildFarmScalesWithCPUs: the parallel build drains every job,
// and the same job count takes less virtual time on more CPUs.
func TestBuildFarmScalesWithCPUs(t *testing.T) {
	run := func(cpus int) *load.Metrics {
		t.Helper()
		m, err := load.Run(load.Config{
			Scenario: load.BuildFarm, Via: sim.Spawn,
			CPUs: cpus, Requests: 16, HeapBytes: 4 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Requests != 16 || m.Creations != 16 {
			t.Fatalf("requests=%d creations=%d, want 16/16", m.Requests, m.Creations)
		}
		return m
	}
	one := run(1)
	four := run(4)
	if four.VirtualNanos >= one.VirtualNanos {
		t.Errorf("4-CPU farm not faster: %dns vs %dns on 1 CPU", four.VirtualNanos, one.VirtualNanos)
	}
	for cpu, u := range four.CPUUtilization {
		if u < 0 || u > 1 {
			t.Errorf("cpu%d utilization %.2f outside [0,1]", cpu, u)
		}
	}
}
