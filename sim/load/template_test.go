package load

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/sim"
)

// TestTemplateRunMatchesColdRun is the clone-equivalence property: for
// every creation strategy, CPU count, and scenario, a machine stamped
// from a frozen template must produce byte-identical JSON metrics to a
// machine built cold — same virtual nanoseconds, same fault counts,
// same per-CPU utilisation, everything. The stamped side runs through
// a shared Templates cache, so the test also exercises one template
// serving many scenarios and strategies of the same warm Shape.
func TestTemplateRunMatchesColdRun(t *testing.T) {
	tc := NewTemplates()
	for _, cpus := range []int{1, 2, 8} {
		for _, scen := range []Scenario{Prefork, ForkStorm, SMPServer} {
			for _, via := range append(sim.Strategies(), sim.EagerForkExec) {
				cfg := Config{
					Scenario: scen, Via: via, CPUs: cpus,
					Requests: 3, HeapBytes: 4 << 20,
				}
				t.Run(fmt.Sprintf("%s/%v/%dcpu", scen, via, cpus), func(t *testing.T) {
					cold, err := Run(cfg)
					if err != nil {
						t.Fatalf("cold run: %v", err)
					}
					stamped, err := tc.Run(cfg)
					if err != nil {
						t.Fatalf("stamped run: %v", err)
					}
					cj, err := json.Marshal(cold)
					if err != nil {
						t.Fatal(err)
					}
					sj, err := json.Marshal(stamped)
					if err != nil {
						t.Fatal(err)
					}
					if string(cj) != string(sj) {
						t.Errorf("stamped metrics diverged from cold:\ncold:    %s\nstamped: %s", cj, sj)
					}
				})
			}
		}
	}
}

// TestTemplateShapeSharing pins the cache key: configs differing only
// in scenario, strategy, or request volume share one template; configs
// differing in warm shape (heap, CPUs) do not.
func TestTemplateShapeSharing(t *testing.T) {
	tc := NewTemplates()
	base := Config{Scenario: Prefork, Via: sim.Spawn, Requests: 2, HeapBytes: 4 << 20}
	a, err := tc.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	same := base
	same.Scenario, same.Via, same.Requests = ForkStorm, sim.ForkExec, 9
	if b, _ := tc.Get(same); b != a {
		t.Error("same warm shape resolved to a different template")
	}
	diff := base
	diff.HeapBytes = 8 << 20
	if c, _ := tc.Get(diff); c == a {
		t.Error("different heap resolved to the same template")
	}
}

// TestTemplateStampShapeMismatch pins the error path: stamping a
// config whose resolved shape differs from the template's must fail
// rather than silently produce a wrong-shaped machine.
func TestTemplateStampShapeMismatch(t *testing.T) {
	tpl, err := NewTemplate(Config{Scenario: Prefork, Via: sim.Spawn, HeapBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Stamp(Config{Scenario: Prefork, Via: sim.Spawn, HeapBytes: 8 << 20}); err == nil {
		t.Error("stamp with mismatched heap succeeded")
	}
}
