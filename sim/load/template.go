package load

import (
	"fmt"
	"sync"

	"repro/sim"
)

// Shape is a warm machine shape: everything the boot-and-warm phase of
// a scenario run depends on. Two Configs with the same Shape warm
// byte-identical machines, whatever their scenario, strategy, or
// request volume — which is why one frozen Template per Shape can
// serve every scenario in a sweep.
type Shape struct {
	CPUs      int
	RAMBytes  uint64
	HeapBytes uint64
	HugePages bool
}

// Shape reports cfg's resolved warm shape.
func (cfg Config) Shape() Shape {
	cfg = cfg.withDefaults()
	return Shape{
		CPUs:      cfg.CPUs,
		RAMBytes:  cfg.RAMBytes,
		HeapBytes: cfg.HeapBytes,
		HugePages: cfg.HugePages,
	}
}

// Template is a frozen machine warmed for one Shape: booted, userland
// installed, server heap mapped and dirtied — the state Run reaches
// just before it zeroes the counters and enters the scenario loop.
// Stamping a run out of it skips the Θ(heap) warm-up the cold path
// repeats per machine; virtual-time metrics are unchanged because a
// clone is logically the warmed machine itself. Safe for concurrent
// Stamp calls.
type Template struct {
	shape     Shape
	tpl       *sim.Template
	heapStart uint64
	heapBytes uint64
}

// NewTemplate boots and warms one machine for cfg's Shape and freezes
// it. The boot sequence is identical to Run's, so a stamped run and a
// cold run produce byte-identical Metrics.
func NewTemplate(cfg Config) (*Template, error) {
	cfg = cfg.withDefaults()
	sys, err := sim.NewSystem(
		sim.WithRAM(cfg.RAMBytes),
		sim.WithCPUs(cfg.CPUs),
		sim.WithUserland("true", "echo", "cat", "hog", "smpspin"),
	)
	if err != nil {
		return nil, err
	}
	p, err := Prepare(sys, cfg)
	if err != nil {
		return nil, err
	}
	tpl, err := sys.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Template{shape: cfg.Shape(), tpl: tpl, heapStart: p.heapStart, heapBytes: p.heapBytes}, nil
}

// Shape reports the template's warm shape.
func (t *Template) Shape() Shape { return t.shape }

// Stamp clones the template into a fresh machine prepared for cfg's
// scenario. cfg must resolve to the template's Shape. Fault schedules
// are not installed here (Run installs them after warm-up, and so does
// Template.Run — same ordering, same op counters).
func (t *Template) Stamp(cfg Config) (*Prepared, error) {
	cfg = cfg.withDefaults()
	if s := cfg.Shape(); s != t.shape {
		return nil, fmt.Errorf("load: stamp shape %+v from template shape %+v", s, t.shape)
	}
	sys, err := t.tpl.Clone()
	if err != nil {
		return nil, err
	}
	return &Prepared{cfg: cfg, sys: sys, heapStart: t.heapStart, heapBytes: t.heapBytes}, nil
}

// Run executes one scenario on a machine stamped from the template —
// the template-backed equivalent of the package-level Run, returning
// byte-identical Metrics at a fraction of the host cost.
func (t *Template) Run(cfg Config) (*Metrics, error) {
	cfg = cfg.withDefaults()
	if cfg.Faults != nil && cfg.Scenario != Prefork {
		return nil, fmt.Errorf("load: scenario %s does not support fault injection (only prefork is failure-tolerant)", cfg.Scenario)
	}
	p, err := t.Stamp(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		p.sys.SetFaultSchedule(cfg.Faults)
	}
	m, err := p.Run()
	if err != nil {
		return nil, err
	}
	// The stamped machine is done: recycle its allocations into the
	// template's next stamp (host-side only; Metrics are plain data).
	t.tpl.Release(p.sys)
	p.sys = nil
	return m, nil
}

// Templates is a concurrency-safe cache of one Template per Shape:
// a fleet warms each distinct machine shape once and stamps all N
// machines from it. Deterministic — a template's content is a pure
// function of its Shape, so cache hits and misses cannot change any
// result.
type Templates struct {
	mu sync.Mutex
	m  map[Shape]*Template

	// servers backs the distributed scenarios: their cells stamp
	// backend Servers from here instead of cold-booting each one.
	servers *ServerTemplates
}

// NewTemplates returns an empty cache.
func NewTemplates() *Templates {
	return &Templates{m: map[Shape]*Template{}, servers: NewServerTemplates()}
}

// Get returns the cached template for cfg's Shape, warming one on the
// first request.
func (tc *Templates) Get(cfg Config) (*Template, error) {
	shape := cfg.Shape()
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if t, ok := tc.m[shape]; ok {
		return t, nil
	}
	t, err := NewTemplate(cfg)
	if err != nil {
		return nil, err
	}
	tc.m[shape] = t
	return t, nil
}

// Run executes cfg on a machine stamped from the cached template for
// its Shape (warming it on first use). A nil cache falls back to the
// cold Run path.
func (tc *Templates) Run(cfg Config) (*Metrics, error) {
	if tc == nil {
		return Run(cfg)
	}
	if cfg.Scenario.Distributed() {
		// A distributed cell is its own topology of Server machines;
		// it stamps them from the server cache (byte-identical to the
		// cold path) rather than from a scenario template.
		return runNetCell(cfg, tc.servers)
	}
	if cfg.Scenario == Migrate {
		// A migration cell boots its own source/destination pair; no
		// single-machine scenario template matches it.
		return runMigrateCell(cfg.withDefaults())
	}
	t, err := tc.Get(cfg)
	if err != nil {
		return nil, err
	}
	return t.Run(cfg)
}

// ServerShape is the warm shape of a prefork Server: everything
// NewServer's boot-and-warm depends on, pool strategy and size
// included.
type ServerShape struct {
	Via       sim.Strategy
	CPUs      int
	RAMBytes  uint64
	HeapBytes uint64
	HugePages bool
	Workers   int
}

// ServerShape reports cfg's resolved server warm shape (Workers
// resolved to NewServer's 4×CPUs default when zero).
func (cfg Config) ServerShape() ServerShape {
	workers := cfg.Workers
	cfg.Scenario = Prefork
	cfg = cfg.withDefaults()
	if workers <= 0 {
		workers = 4 * cfg.CPUs
	}
	return ServerShape{
		Via:       cfg.Via,
		CPUs:      cfg.CPUs,
		RAMBytes:  cfg.RAMBytes,
		HeapBytes: cfg.HeapBytes,
		HugePages: cfg.HugePages,
		Workers:   workers,
	}
}

// ServerTemplate is a frozen ready-to-serve Server: booted, heap
// dirtied, worker pool pre-created through the configured strategy.
// Stamping reproduces NewServer's post-warm-up state — warm-up cost,
// baselines, and parked pool included — without re-paying the warm-up
// host time per machine.
type ServerTemplate struct {
	shape    ServerShape
	tpl      *sim.Template
	workers  int
	poolPids []int

	warmNanos uint64
	warmPTEs  uint64

	baseProcs          int
	basePages, baseCmt uint64
}

// NewServerTemplate warms one server for cfg's ServerShape and
// freezes it.
func NewServerTemplate(cfg Config) (*ServerTemplate, error) {
	cfg.OnSample = nil // per-machine hooks attach at Stamp time
	s, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	tpl, err := s.sys.Snapshot()
	if err != nil {
		return nil, err
	}
	st := &ServerTemplate{
		shape:     cfg.ServerShape(),
		tpl:       tpl,
		workers:   s.workers,
		warmNanos: s.warmNanos,
		warmPTEs:  s.warmPTEs,
		baseProcs: s.baseProcs,
		basePages: s.basePages,
		baseCmt:   s.baseCmt,
	}
	for _, p := range s.pool {
		st.poolPids = append(st.poolPids, p.Pid())
	}
	return st, nil
}

// Stamp clones a fresh, independent Server from the template,
// re-adopting the parked worker pool by pid and attaching cfg's
// per-machine hooks (OnSample) and serve-phase knobs (Window,
// RequestWorkMiB). cfg must resolve to the template's ServerShape.
func (t *ServerTemplate) Stamp(cfg Config) (*Server, error) {
	if s := cfg.ServerShape(); s != t.shape {
		return nil, fmt.Errorf("load: stamp server shape %+v from template shape %+v", s, t.shape)
	}
	cfg.Scenario = Prefork
	cfg = cfg.withDefaults()
	sys, err := t.tpl.Clone()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg, workers: t.workers, sys: sys, k: sys.Kernel(), tpl: t.tpl,
		warmNanos: t.warmNanos, warmPTEs: t.warmPTEs,
		baseProcs: t.baseProcs, basePages: t.basePages, baseCmt: t.baseCmt,
	}
	for _, pid := range t.poolPids {
		p, err := sys.FindProcess(pid)
		if err != nil {
			return nil, fmt.Errorf("load: re-adopt pool worker: %w", err)
		}
		s.pool = append(s.pool, p)
	}
	s.observe(0)
	return s, nil
}

// ServerTemplates is a concurrency-safe cache of one ServerTemplate
// per ServerShape — sim/cluster warms each pool's machine shape once
// and stamps every scale-out boot from it, so scale-out host cost
// stops being Θ(heap).
type ServerTemplates struct {
	mu sync.Mutex
	m  map[ServerShape]*ServerTemplate
}

// NewServerTemplates returns an empty cache.
func NewServerTemplates() *ServerTemplates {
	return &ServerTemplates{m: map[ServerShape]*ServerTemplate{}}
}

// Server stamps a ready-to-serve Server for cfg from the cached
// template for its ServerShape (warming one on first use). A nil
// cache falls back to a cold NewServer boot.
func (tc *ServerTemplates) Server(cfg Config) (*Server, error) {
	if tc == nil {
		return NewServer(cfg)
	}
	shape := cfg.ServerShape()
	tc.mu.Lock()
	t, ok := tc.m[shape]
	if !ok {
		var err error
		warmCfg := cfg
		warmCfg.OnSample = nil
		t, err = NewServerTemplate(warmCfg)
		if err != nil {
			tc.mu.Unlock()
			return nil, err
		}
		tc.m[shape] = t
	}
	tc.mu.Unlock()
	return t.Stamp(cfg)
}
