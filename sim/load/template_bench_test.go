package load

import (
	"testing"

	"repro/sim"
)

// BenchmarkStamp pins the tentpole's host-cost claim at the load
// layer: stamping a warmed 64 MiB prefork machine from a frozen
// template must stay O(live structures) — frame table memmove plus
// aliased page-table root — not Θ(heap). Regressions here (say, a
// clone path that starts copying radix nodes or materialising zero
// pages) show up as an order-of-magnitude jump.
func BenchmarkStamp(b *testing.B) {
	cfg := Config{Scenario: Prefork, Via: sim.Spawn, HeapBytes: 64 << 20}
	tpl, err := NewTemplate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tpl.Stamp(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdBootWarm is BenchmarkStamp's baseline: the same warmed
// machine built from scratch. The ratio between the two is E13's
// headline number (forkbench clonebench).
func BenchmarkColdBootWarm(b *testing.B) {
	cfg := Config{Scenario: Prefork, Via: sim.Spawn, HeapBytes: 64 << 20}.withDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := sim.NewSystem(
			sim.WithRAM(cfg.RAMBytes),
			sim.WithCPUs(cfg.CPUs),
			sim.WithUserland("true", "echo", "cat", "hog", "smpspin"),
		)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Prepare(sys, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
