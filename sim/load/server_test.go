package load_test

import (
	"testing"

	"repro/sim"
	"repro/sim/load"
)

// TestServerServesAndDrains: the persistent server serves batches
// across the closed loop, the running totals add up, and Drain
// returns process, frame, and commit counts to the post-warm-up
// baseline under every strategy — the scale-down leak invariant at
// its source.
func TestServerServesAndDrains(t *testing.T) {
	for _, via := range sim.Strategies() {
		if via == sim.EmulatedFork {
			continue // Θ(resident bytes) per creation; covered in the cluster tests at tiny scale
		}
		t.Run(via.String(), func(t *testing.T) {
			s, err := load.NewServer(load.Config{
				Via: via, HeapBytes: 4 << 20, Workers: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if s.WarmupNanos() == 0 {
				t.Error("warm-up took no virtual time")
			}
			b1, err := s.ServeBatch(8, 0)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := s.ServeBatch(5, 0)
			if err != nil {
				t.Fatal(err)
			}
			if b1.Served != 8 || b2.Served != 5 || b1.Failed+b2.Failed != 0 {
				t.Errorf("batches served %d/%d failed %d/%d, want 8/5 0/0",
					b1.Served, b2.Served, b1.Failed, b2.Failed)
			}
			if b1.Nanos == 0 || b2.Nanos == 0 {
				t.Error("batch consumed no virtual time")
			}
			snap := s.Sample()
			if snap.Requests != 13 || snap.Creations != 13 {
				t.Errorf("sample totals %d/%d, want 13/13", snap.Requests, snap.Creations)
			}
			if snap.RSSBytes < 4<<20 {
				t.Errorf("sampled RSS %d below resident heap", snap.RSSBytes)
			}
			d, err := s.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if d.EndProcs != d.BaseProcs {
				t.Errorf("process leak: %d -> %d", d.BaseProcs, d.EndProcs)
			}
			if d.EndPages != d.BasePages {
				t.Errorf("frame leak: %d -> %d", d.BasePages, d.EndPages)
			}
			if d.EndCommit != d.BaseCommit {
				t.Errorf("commit leak: %d -> %d", d.BaseCommit, d.EndCommit)
			}
			if _, err := s.Drain(); err == nil {
				t.Error("double Drain did not error")
			}
			if _, err := s.ServeBatch(1, 0); err == nil {
				t.Error("ServeBatch after Drain did not error")
			}
		})
	}
}

// TestServerBudgetStopsLaunching: a batch under a virtual-time budget
// serves fewer requests than offered — the leftover is the caller's
// backlog — and identical configs leave identical leftovers (the
// reconcile loop's determinism rests on this).
func TestServerBudgetStopsLaunching(t *testing.T) {
	run := func() (load.Batch, uint64) {
		t.Helper()
		s, err := load.NewServer(load.Config{
			Via: sim.ForkExec, HeapBytes: 16 << 20, Workers: 2, RequestWorkMiB: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		// One fork of a 16 MiB parent costs ~1ms virtual; 2ms cannot
		// fit 50 requests.
		b, err := s.ServeBatch(50, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return b, s.Elapsed()
	}
	b, elapsed := run()
	if b.Served >= 50 {
		t.Errorf("served all %d requests under a 2ms budget", b.Served)
	}
	if b.Served == 0 {
		t.Error("budget served nothing")
	}
	if b.Nanos < 2_000_000 {
		t.Errorf("batch stopped at %dns, before the budget", b.Nanos)
	}
	b2, elapsed2 := run()
	if b != b2 || elapsed != elapsed2 {
		t.Errorf("budgeted batch not deterministic: %+v @%d vs %+v @%d", b, elapsed, b2, elapsed2)
	}
}

// TestServerWarmupForkVsSpawn pins the cluster experiment's premise:
// with a dirty heap and a pre-created pool, a fork machine's warm-up
// (Θ(heap) page-table duplication per worker) costs more virtual time
// than a spawn machine's.
func TestServerWarmupForkVsSpawn(t *testing.T) {
	warm := func(via sim.Strategy) uint64 {
		t.Helper()
		s, err := load.NewServer(load.Config{Via: via, HeapBytes: 64 << 20, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Drain()
		if via == sim.ForkExec && s.WarmupPTECopies() == 0 {
			t.Error("fork warm-up copied no PTEs")
		}
		return s.WarmupNanos()
	}
	fork, spawn := warm(sim.ForkExec), warm(sim.Spawn)
	if fork <= spawn {
		t.Errorf("fork warm-up %dns not above spawn %dns", fork, spawn)
	}
}

// TestOnSampleHook: the mid-run sampling hook fires at the drivers'
// peak-occupancy points with a monotonic virtual clock, live in-flight
// counts, and running totals that end at the final metrics.
func TestOnSampleHook(t *testing.T) {
	var snaps []load.Snapshot
	m, err := load.Run(load.Config{
		Scenario: load.Prefork, Via: sim.Spawn,
		Requests: 16, HeapBytes: 4 << 20, CPUs: 2,
		OnSample: func(s load.Snapshot) { snaps = append(snaps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("hook never fired")
	}
	sawInflight := false
	for i, s := range snaps {
		if i > 0 && s.VirtualNanos < snaps[i-1].VirtualNanos {
			t.Fatalf("sample %d clock went backwards: %d after %d", i, s.VirtualNanos, snaps[i-1].VirtualNanos)
		}
		if s.InFlight > 0 {
			sawInflight = true
		}
		if s.RSSBytes == 0 {
			t.Fatalf("sample %d reports zero RSS", i)
		}
	}
	if !sawInflight {
		t.Error("no sample saw a live request")
	}
	// The driver samples at peak occupancy, before draining the last
	// request: the final snapshot has every creation on the books and
	// one request still in flight.
	last := snaps[len(snaps)-1]
	if last.Creations != m.Creations || last.Requests != m.Requests-1 || last.InFlight != 1 {
		t.Errorf("last sample requests=%d creations=%d inflight=%d; metrics %d/%d",
			last.Requests, last.Creations, last.InFlight, m.Requests, m.Creations)
	}
}
