package load_test

import (
	"encoding/json"
	"testing"

	"repro/sim"
	"repro/sim/load"
)

// metricsJSON flattens Metrics for byte comparison.
func metricsJSON(t *testing.T, m *load.Metrics) []byte {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTemplateRecycleNoBleed is the machine-reuse isolation test: after
// Template.Run releases a stamped machine back into the template's
// recycle pool, the next stamp lands in that recycled shell — and must
// behave exactly like a stamp into a fresh shell, which must behave
// exactly like a cold boot. Any state bleeding through the recycled
// allocations (a stale frame, a surviving process, an unreset counter)
// shows up as a byte difference here.
func TestTemplateRecycleNoBleed(t *testing.T) {
	for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn} {
		t.Run(via.String(), func(t *testing.T) {
			cfg := load.Config{
				Scenario: load.Prefork, Via: via, CPUs: 2,
				Requests: 8, HeapBytes: 4 << 20,
			}
			tpl, err := load.NewTemplate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := load.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := metricsJSON(t, cold)
			// Run 1 stamps a fresh shell; runs 2 and 3 stamp the shell
			// the previous run released.
			for i := 1; i <= 3; i++ {
				m, err := tpl.Run(cfg)
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				if got := metricsJSON(t, m); string(got) != string(want) {
					t.Fatalf("run %d differs from cold boot:\nrecycled: %s\ncold:     %s", i, got, want)
				}
			}
		})
	}
}

// TestTemplateRecycleAcrossScenarios interleaves different workloads
// through one template's recycle pool: a shell that just ran one
// scenario must serve the next with no cross-scenario bleed.
func TestTemplateRecycleAcrossScenarios(t *testing.T) {
	base := load.Config{Via: sim.ForkExec, CPUs: 2, Requests: 6, HeapBytes: 4 << 20}
	prefork, pipeline := base, base
	prefork.Scenario = load.Prefork
	pipeline.Scenario = load.Pipeline

	tpl, err := load.NewTemplate(prefork)
	if err != nil {
		t.Fatal(err)
	}
	first, err := tpl.Run(prefork)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.Run(pipeline); err != nil {
		t.Fatal(err)
	}
	again, err := tpl.Run(prefork)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := metricsJSON(t, again), metricsJSON(t, first); string(got) != string(want) {
		t.Errorf("prefork run after a pipeline run through the same pool differs:\nafter:  %s\nbefore: %s", got, want)
	}
}

// TestServerTemplateRecycleReturnsToBaseline drives the server recycle
// path end to end: stamp, serve, drain (which recycles the machine into
// the template), then stamp and serve again. The second server must
// reproduce the first byte for byte — batches, drain books, warm-up
// numbers — and every drain must return process, frame, and commit
// counts to the post-warm-up baseline.
func TestServerTemplateRecycleReturnsToBaseline(t *testing.T) {
	for _, via := range []sim.Strategy{sim.ForkExec, sim.Spawn} {
		t.Run(via.String(), func(t *testing.T) {
			cfg := load.Config{Via: via, CPUs: 1, HeapBytes: 4 << 20, Workers: 2}
			st, err := load.NewServerTemplate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			type run struct {
				batch load.Batch
				drain load.DrainStats
				warm  uint64
			}
			one := func() run {
				t.Helper()
				s, err := st.Stamp(cfg)
				if err != nil {
					t.Fatal(err)
				}
				b, err := s.ServeBatch(8, 0)
				if err != nil {
					t.Fatal(err)
				}
				d, err := s.Drain()
				if err != nil {
					t.Fatal(err)
				}
				return run{batch: b, drain: d, warm: s.WarmupNanos()}
			}
			r1, r2 := one(), one()
			if r1 != r2 {
				t.Errorf("recycled server run differs from first:\nfirst:  %+v\nsecond: %+v", r1, r2)
			}
			d := r1.drain
			if d.EndProcs != d.BaseProcs || d.EndPages != d.BasePages || d.EndCommit != d.BaseCommit {
				t.Errorf("drain left leaks: %+v", d)
			}
		})
	}
}

// TestServerDrainSevers: once Drain recycles a stamped server's machine
// into the template, the server's handles are gone — a late ServeBatch
// must fail rather than touch whatever machine occupies the recycled
// shell next.
func TestServerDrainSevers(t *testing.T) {
	cfg := load.Config{Via: sim.Spawn, CPUs: 1, HeapBytes: 4 << 20, Workers: 1}
	st, err := load.NewServerTemplate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := st.Stamp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ServeBatch(1, 0); err == nil {
		t.Error("ServeBatch succeeded on a drained, recycled server")
	}
	if _, err := s.Drain(); err == nil {
		t.Error("second Drain succeeded")
	}
}
