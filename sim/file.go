package sim

import (
	"fmt"

	"repro/internal/vfs"
)

// File is a host-side handle on a simulated open file description —
// the sim analogue of *os.File. Files come from System.Open,
// System.Create, and System.Pipe, and are wired into commands through
// Cmd.Stdin/Stdout/Stderr or Cmd.ExtraFiles, which grant the child its
// own reference; Close drops only the host's.
type File struct {
	of   *vfs.OpenFile
	name string
}

// Name reports the path (or a pipe tag) the file was opened as.
func (f *File) Name() string { return f.name }

// Read reads from the host's file offset. A drained pipe with live
// writers returns errno.EAGAIN rather than blocking: the host is not a
// schedulable thread, so host-side reads never park.
func (f *File) Read(p []byte) (int, error) {
	if f.of == nil {
		return 0, fmt.Errorf("sim: read %s: file already closed", f.name)
	}
	return f.of.Read(p)
}

// Write writes at the host's file offset (EAGAIN on a full pipe).
func (f *File) Write(p []byte) (int, error) {
	if f.of == nil {
		return 0, fmt.Errorf("sim: write %s: file already closed", f.name)
	}
	return f.of.Write(p)
}

// Close releases the host's reference. Closing a pipe end the host no
// longer needs is what lets readers in the machine see EOF.
func (f *File) Close() error {
	if f.of == nil {
		return fmt.Errorf("sim: file already closed")
	}
	f.of.Release()
	f.of = nil
	return nil
}

// raw returns the open-file description, or nil after Close.
func (f *File) raw() *vfs.OpenFile { return f.of }

// Open opens an existing simulated file for reading.
func (s *System) Open(path string) (*File, error) {
	ino, err := s.k.FS().Resolve(nil, path)
	if err != nil {
		return nil, err
	}
	return &File{of: vfs.NewOpenFile(ino, vfs.ORdOnly), name: path}, nil
}

// Create creates (or truncates) a simulated file for writing.
func (s *System) Create(path string) (*File, error) {
	ino, err := s.k.FS().Create(nil, path)
	if err != nil {
		return nil, err
	}
	ino.SetData(nil)
	return &File{of: vfs.NewOpenFile(ino, vfs.OWrOnly), name: path}, nil
}

// Pipe returns a connected simulated pipe pair: bytes written to w are
// read from r. Hand the ends to different commands to build pipelines,
// then Close the host's copies so EOF can propagate.
func (s *System) Pipe() (r, w *File) {
	ro, wo := vfs.NewPipe()
	return &File{of: ro, name: "pipe:r"}, &File{of: wo, name: "pipe:w"}
}
