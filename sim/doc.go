// Package sim is the public face of the reproduction of "A fork() in
// the road" (HotOS'19): an os/exec-style process API over the
// deterministic OS simulator in internal/kernel.
//
// The paper's §6 argument is an API argument — replace fork with a
// high-level spawn API plus a low-level cross-process API — and this
// package makes that argument the repository's actual surface. A
// System is one booted simulated machine; a Cmd describes a process to
// run on it, in the style of os/exec.Cmd; and every Cmd can be created
// through any of the process-creation strategies the paper compares,
// selected per command with Via:
//
//	sys, _ := sim.NewSystem(sim.WithConsole(os.Stdout))
//	out, _ := sys.Command("/bin/echo", "hello").Output()
//
//	cmd := sys.Command("/bin/cat")
//	cmd.Stdin = strings.NewReader("fed from the host\n")
//	cmd.Via(sim.ForkExec) // or VforkExec, Spawn, Builder, EmulatedFork
//	err := cmd.Run()
//
// Exit status is decoded: Wait and Run return *ExitError carrying a
// ProcessState with ExitCode and Signaled/Signal, never a raw status
// word. Pipes (System.Pipe), simulated files (System.Open/Create), and
// ExtraFiles wire descriptors between commands exactly as os/exec
// wires *os.File.
//
// A System is a multicore machine: sim.WithCPUs(n) boots up to 64
// simulated CPUs (default 1). Runnable threads then genuinely overlap
// in virtual time — and fork gets more expensive, because every COW
// break, unmap, and protection change pays a TLB-shootdown IPI per
// other CPU running the address space (§5's multicore argument).
// Stats reports per-CPU utilization and the shootdown count, and
// ProcessState reports per-CPU execution time.
//
// Determinism guarantee: the scheduler executes CPUs in virtual-time
// order (lowest clock first, lowest id on ties) with per-CPU run
// queues and deterministic work stealing, so with identical inputs a
// simulation is reproducible bit-for-bit at every CPU count. Nothing
// in the machine reads host time, host scheduling, or map iteration
// order; sim/load's regression suite asserts byte-identical metrics
// across repeated runs at 1, 2, 4, and 8 CPUs.
//
// Failure is a schedulable input: sim.WithFaults installs a
// deterministic fault-injection schedule from the sim/fault
// subpackage — a pure function of (machine id, virtual time, op
// counter) consulted at every fallible kernel boundary (frame
// allocation, commit reservation, page-table clone, COW break,
// descriptor-table copy, exec image load, thread creation) — and
// sim.WithTrace records a structured event trace (syscall enter/exit,
// scheduling decisions, shootdown IPIs, injected faults, process
// lifecycle) rendered by `forkbench trace` and frozen as golden files
// by the sim tests. The same schedule and seed replay bit-for-bit, so
// any failure found once is a regression test forever; sim/fault's
// exhaustive sweep injects a fault at every operation a clean run
// enumerates and holds the kernel to well-typed errors and zero leaks.
//
// The sim/load subpackage drives high-scale workloads over a System —
// a prefork server, pipeline farm, snapshot checkpointer, fork storm,
// a multithreaded SMP server snapshotting mid-traffic, and a parallel
// build farm, each deterministic and parameterized by strategy —
// turning the paper's §5 "fork poisons servers" claim into measured
// throughput (see `forkbench load`). The sim/fleet subpackage scales
// that to a fleet: N independent machines multiplexed across host
// cores with results merged in machine-id order, so the aggregate
// report inherits the bit-for-bit determinism guarantee at any host
// parallelism (see `forkbench fleet`). The sim/cluster subpackage
// adds the elasticity layer above that: named node pools scaled by a
// deterministic virtual-time reconcile loop, where a new machine's
// warm-up — Θ(heap) per pool worker under fork — becomes measured
// scale-out latency (see `forkbench cluster`).
//
// Warmed machines can be frozen and stamped: System.Snapshot freezes
// the current state into an immutable Template whose page-table
// nodes, frame contents, and process trees are host-COW-shared into
// every Template.Clone, so cloning a warmed machine costs O(live
// structures) host time instead of Θ(heap) while charging zero
// simulated cost — a clone's metrics and traces are byte-identical to
// a cold-booted machine's. sim/load, sim/fleet, and sim/cluster all
// stamp their machines from templates; `forkbench clonebench` (E13)
// measures the host-side win (see README "Template machines & O(1)
// clone").
//
// Processes are movable: Process.Checkpoint serializes one process
// into a self-contained Image (a priced page-table walk; the process
// keeps running) and System.Restore rebuilds it on another machine,
// byte-identical to an unmigrated run. Fork-entangled state — a
// borrowed vfork space, pipe peers, unreaped children — refuses with
// a typed *kernel.CheckpointError: how a process was created decides
// whether it can move. sim/load's Migrate scenario drives iterative
// pre-copy live migration over the wire and sim/fleet's Rebalance
// wave migrates workers instead of restarting machines; `forkbench
// migrate` (E16) measures downtime vs heap per strategy (see README
// "Checkpoint & live migration").
//
// Machines are not islands: sim/net is the deterministic
// inter-machine message fabric (addressable NICs, latency/bandwidth
// cost model, delivery merged in (virtual-time, destination, seq)
// order), sim/load's netlb and kvshard scenarios are the distributed
// workloads riding it, and sim/metrics renders any run's counters in
// Prometheus text format (`forkbench metrics` — see README
// "Inter-machine network & metrics").
//
// The internal packages remain the substrate: internal/kernel is the
// simulated OS, internal/core holds the paper's spawn/cross-process
// primitives, and internal/experiments regenerates the figures.
// Advanced callers can drop down via System.Kernel, System.Host and
// Process.Raw.
package sim
