// Package sim is the public face of the reproduction of "A fork() in
// the road" (HotOS'19): an os/exec-style process API over the
// deterministic OS simulator in internal/kernel.
//
// The paper's §6 argument is an API argument — replace fork with a
// high-level spawn API plus a low-level cross-process API — and this
// package makes that argument the repository's actual surface. A
// System is one booted simulated machine; a Cmd describes a process to
// run on it, in the style of os/exec.Cmd; and every Cmd can be created
// through any of the process-creation strategies the paper compares,
// selected per command with Via:
//
//	sys, _ := sim.NewSystem(sim.WithConsole(os.Stdout))
//	out, _ := sys.Command("/bin/echo", "hello").Output()
//
//	cmd := sys.Command("/bin/cat")
//	cmd.Stdin = strings.NewReader("fed from the host\n")
//	cmd.Via(sim.ForkExec) // or VforkExec, Spawn, Builder, EmulatedFork
//	err := cmd.Run()
//
// Exit status is decoded: Wait and Run return *ExitError carrying a
// ProcessState with ExitCode and Signaled/Signal, never a raw status
// word. Pipes (System.Pipe), simulated files (System.Open/Create), and
// ExtraFiles wire descriptors between commands exactly as os/exec
// wires *os.File.
//
// The sim/load subpackage drives high-scale workloads over a System —
// a prefork server, pipeline farm, snapshot checkpointer, and fork
// storm, each deterministic and parameterized by strategy — turning
// the paper's §5 "fork poisons servers" claim into measured
// throughput (see `forkbench load`).
//
// The internal packages remain the substrate: internal/kernel is the
// simulated OS, internal/core holds the paper's spawn/cross-process
// primitives, and internal/experiments regenerates the figures.
// Advanced callers can drop down via System.Kernel, System.Host and
// Process.Raw.
package sim
